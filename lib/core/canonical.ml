(* 64-bit FNV-1a over a framed byte stream.  Int64 keeps the arithmetic
   faithful on every platform (OCaml's native int is 63-bit). *)

type t = { mutable h : int64 }

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let create () = { h = fnv_offset }

let feed_byte t b =
  t.h <- Int64.mul (Int64.logxor t.h (Int64.of_int (b land 0xff))) fnv_prime

let feed_int t v =
  (* 'i' frame + 8 bytes little-endian *)
  feed_byte t (Char.code 'i');
  let v = Int64.of_int v in
  for k = 0 to 7 do
    feed_byte t (Int64.to_int (Int64.shift_right_logical v (k * 8)))
  done

let feed_bool t b =
  feed_byte t (Char.code 'b');
  feed_byte t (if b then 1 else 0)

let feed_raw t s = String.iter (fun c -> feed_byte t (Char.code c)) s

let feed_string t s =
  feed_byte t (Char.code 's');
  feed_int t (String.length s);
  feed_raw t s

let feed_tag t s =
  feed_byte t (Char.code 't');
  feed_raw t s;
  feed_byte t 0

let feed_interval t i =
  feed_tag t "iv";
  feed_int t (Interval.lo i);
  feed_int t (Interval.hi i)

let feed_list t f xs =
  feed_byte t (Char.code 'l');
  feed_int t (List.length xs);
  List.iter (f t) xs

let feed_option t f = function
  | None -> feed_tag t "none"
  | Some v ->
    feed_tag t "some";
    f t v

let digest t = Printf.sprintf "%016Lx" t.h

let hash_string s =
  let t = create () in
  feed_raw t s;
  digest t

(* -- model fingerprint -------------------------------------------------- *)

let sorted_by key cmp xs =
  List.sort (fun a b -> cmp (key a) (key b)) xs

let feed_tag_set t tags =
  feed_list t
    (fun t tag -> feed_string t (Spi.Tag.name tag))
    (Spi.Tag.Set.elements tags)

let feed_token t tok =
  feed_tag t "tok";
  feed_option t feed_int (Spi.Token.payload tok);
  feed_tag_set t (Spi.Token.tags tok)

let feed_production t (cid, (p : Spi.Mode.production)) =
  feed_string t (Spi.Ids.Channel_id.to_string cid);
  feed_interval t p.rate;
  feed_tag_set t p.tags

let feed_mode t m =
  feed_tag t "mode";
  feed_string t (Spi.Ids.Mode_id.to_string (Spi.Mode.id m));
  feed_interval t (Spi.Mode.latency m);
  feed_tag t
    (match Spi.Mode.payload_policy m with
    | Fresh -> "fresh"
    | Inherit_first -> "inherit");
  feed_list t
    (fun t (cid, rate) ->
      feed_string t (Spi.Ids.Channel_id.to_string cid);
      feed_interval t rate)
    (sorted_by fst Spi.Ids.Channel_id.compare (Spi.Mode.consumptions m));
  feed_list t feed_production
    (sorted_by fst Spi.Ids.Channel_id.compare (Spi.Mode.productions m))

let feed_rule t r =
  feed_tag t "rule";
  feed_string t (Spi.Ids.Rule_id.to_string (Spi.Activation.rule_id r));
  feed_string t
    (Spi.Ids.Mode_id.to_string (Spi.Activation.target_mode r));
  (* Predicates have no structural accessors; their printed form is
     deterministic and total, which is all a fingerprint needs. *)
  feed_string t
    (Format.asprintf "%a" Spi.Predicate.pp (Spi.Activation.guard r))

let feed_process t p =
  feed_tag t "proc";
  feed_string t (Spi.Ids.Process_id.to_string (Spi.Process.id p));
  feed_list t feed_mode
    (sorted_by Spi.Mode.id Spi.Ids.Mode_id.compare (Spi.Process.modes p));
  feed_list t feed_rule
    (sorted_by Spi.Activation.rule_id Spi.Ids.Rule_id.compare
       (Spi.Activation.rules (Spi.Process.activation p)))

let feed_channel t c =
  feed_tag t "chan";
  feed_string t (Spi.Ids.Channel_id.to_string (Spi.Chan.id c));
  feed_tag t
    (match Spi.Chan.kind c with Queue -> "queue" | Register -> "register");
  feed_option t feed_int (Spi.Chan.capacity c);
  feed_list t feed_token (Spi.Chan.initial c)

let of_model m =
  let t = create () in
  feed_tag t "model/v1";
  feed_list t feed_process
    (sorted_by Spi.Process.id Spi.Ids.Process_id.compare
       (Spi.Model.processes m));
  feed_list t feed_channel
    (sorted_by Spi.Chan.id Spi.Ids.Channel_id.compare (Spi.Model.channels m));
  digest t

let feed_port t p =
  feed_tag t (match Port.direction p with Input -> "in" | Output -> "out");
  feed_string t (Spi.Ids.Port_id.to_string (Port.id p))

let feed_selection t (s : Structure.selection) =
  feed_tag t "selection";
  feed_list t
    (fun t (r : Structure.selection_rule) ->
      feed_string t (Spi.Ids.Rule_id.to_string r.sel_rule_id);
      feed_string t (Format.asprintf "%a" Spi.Predicate.pp r.sel_guard);
      feed_string t (Spi.Ids.Cluster_id.to_string r.target))
    (sorted_by
       (fun (r : Structure.selection_rule) -> r.sel_rule_id)
       Spi.Ids.Rule_id.compare s.rules);
  feed_list t
    (fun t (cid, l) ->
      feed_string t (Spi.Ids.Cluster_id.to_string cid);
      feed_int t l)
    (sorted_by fst Spi.Ids.Cluster_id.compare s.config_latencies);
  feed_option t
    (fun t cid -> feed_string t (Spi.Ids.Cluster_id.to_string cid))
    s.initial

(* Cluster lists keep declaration order: a cluster's position is its
   variant index, so reordering is a structural change. *)
let rec feed_site t (s : Structure.site) =
  feed_tag t "site";
  let iface = s.Structure.iface in
  feed_string t (Spi.Ids.Interface_id.to_string iface.Structure.interface_id);
  feed_list t feed_port
    (sorted_by Port.id Spi.Ids.Port_id.compare iface.Structure.iface_ports);
  feed_list t feed_cluster iface.Structure.clusters;
  feed_option t feed_selection iface.Structure.selection;
  feed_list t
    (fun t (pid, cid) ->
      feed_string t (Spi.Ids.Port_id.to_string pid);
      feed_string t (Spi.Ids.Channel_id.to_string cid))
    (sorted_by fst Spi.Ids.Port_id.compare s.Structure.wiring)

and feed_cluster t (c : Structure.cluster) =
  feed_tag t "cluster";
  feed_string t (Spi.Ids.Cluster_id.to_string c.cluster_id);
  feed_list t feed_port
    (sorted_by Port.id Spi.Ids.Port_id.compare c.cluster_ports);
  feed_list t feed_process
    (sorted_by Spi.Process.id Spi.Ids.Process_id.compare c.processes);
  feed_list t feed_channel
    (sorted_by Spi.Chan.id Spi.Ids.Channel_id.compare c.channels);
  feed_list t feed_site c.sub_sites

let of_system sys =
  let t = create () in
  feed_tag t "system/v1";
  feed_string t (System.name sys);
  feed_list t feed_process
    (sorted_by Spi.Process.id Spi.Ids.Process_id.compare
       (System.processes sys));
  feed_list t feed_channel
    (sorted_by Spi.Chan.id Spi.Ids.Channel_id.compare (System.channels sys));
  feed_list t feed_site (System.sites sys);
  digest t
