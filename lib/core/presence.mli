(** Presence conditions over a variant space.

    Family-based ("featured") analyses evaluate the whole variant space
    of a system in one pass: work shared by every configuration runs
    once, and the analysis splits only where configurations diverge
    (Dimovski's family-based model checking, lifted to the paper's
    cluster/interface variant spaces).  The object such an analysis
    threads through every step is a {e presence condition} — the set of
    configurations a step applies to.

    This module fixes one enumeration of the space
    ({!Variant_space.enumerate} order) and represents presence
    conditions as bitsets over the configuration indices, so the
    simulator can carry, intersect and split them without touching
    assignment lists on its hot path. *)

type space
(** A frozen enumeration of a system's variant space: configuration
    index [i] means the [i]-th assignment of
    {!Variant_space.enumerate}. *)

val space : ?linkage:Variant_space.linkage -> System.t -> space
(** @raise Invalid_argument when the system has no configuration (a
    site without clusters under linkage truncation). *)

val size : space -> int
(** Number of configurations in the space (at least 1). *)

val assignment : space -> int -> Variant_space.assignment
(** The assignment enumerated at a configuration index.
    @raise Invalid_argument when the index is out of range. *)

val sites : space -> Spi.Ids.Interface_id.t list
(** The system's top-level sites, in site order. *)

val choice_at : space -> int -> Spi.Ids.Interface_id.t -> Spi.Ids.Cluster_id.t
(** The cluster configuration [i] selects at a site.
    @raise Invalid_argument on an unknown site. *)

(** {1 Presence conditions} *)

type t
(** An immutable set of configuration indices of one {!space}. *)

val full : space -> t
val empty : space -> t
val singleton : space -> int -> t
val of_indices : space -> int list -> t
val mem : int -> t -> bool
val cardinal : t -> int
val is_empty : t -> bool
val equal : t -> t -> bool
val subset : t -> t -> bool
val inter : t -> t -> t
val union : t -> t -> t
val diff : t -> t -> t

val indices : t -> int list
(** Ascending configuration indices. *)

val first : t -> int option
(** The smallest member — the representative configuration a sub-family
    executes. *)

val iter : (int -> unit) -> t -> unit

val partition_at :
  space -> t -> Spi.Ids.Interface_id.t -> (Spi.Ids.Cluster_id.t * t) list
(** Splits a presence condition by the {e full subtree choice} its
    members make at a top-level site: the cluster selected there plus
    every nested choice under it, so two members agreeing on the
    top-level cluster but diverging at an embedded interface land in
    different parts (and the returned cluster id may repeat across
    parts).  Parts are ordered by their smallest member index (so the
    part containing the current representative comes first when the
    representative is the set's minimum); every part is non-empty and
    the parts partition the input. *)

val pp : Format.formatter -> t -> unit
(** Renders the member indices, e.g. [{0 2 3}]. *)
