(** Product-generation evolution of a variant system.

    Variant types change across product generations — "a network
    protocol that has been implemented as a production variant in
    hardware might end up as a software-implemented run-time variant in
    the next product generation".  These operations rewrite the design
    representation accordingly:

    - {!fix_variant} commits one interface to one cluster (the
      production decision): the cluster is inlined into the common part
      and the site disappears, while every other site stays variable —
      a {e partial} flattening.
    - {!make_runtime} attaches (or replaces) a selection function,
      turning a production-variant interface into a run-time /
      dynamically selected one.
    - {!make_production} strips the selection function: the variants
      remain in the representation but selection moves back to the
      designer. *)

exception Evolution_error of Diagnostic.t
(** The diagnostic's [subject] names the offending interface or
    cluster. *)

val fix_variant :
  Spi.Ids.Interface_id.t -> Spi.Ids.Cluster_id.t -> System.t -> System.t
(** Inlines the chosen cluster of the named interface into the system's
    common part (processes and channels prefixed with the interface
    name, ports wired per the site), removing the site.  Other sites,
    channels, processes and constraints are untouched.
    @raise Evolution_error on unknown interface or cluster. *)

val make_runtime :
  Spi.Ids.Interface_id.t -> Structure.selection -> System.t -> System.t
(** @raise Evolution_error on unknown interface. *)

val make_production : Spi.Ids.Interface_id.t -> System.t -> System.t
(** @raise Evolution_error on unknown interface. *)

(** {2 Non-raising wrappers} *)

val fix_variant_result :
  Spi.Ids.Interface_id.t ->
  Spi.Ids.Cluster_id.t ->
  System.t ->
  (System.t, Diagnostic.t) result

val make_runtime_result :
  Spi.Ids.Interface_id.t ->
  Structure.selection ->
  System.t ->
  (System.t, Diagnostic.t) result

val make_production_result :
  Spi.Ids.Interface_id.t -> System.t -> (System.t, Diagnostic.t) result
