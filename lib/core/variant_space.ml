module I = Spi.Ids

type assignment = (I.Interface_id.t * I.Cluster_id.t) list
type linkage = I.Interface_id.t list list

let site_options system =
  List.map
    (fun site ->
      let iface = site.Structure.iface in
      ( iface.Structure.interface_id,
        List.map Cluster.id iface.Structure.clusters ))
    (System.sites system)

let independent_count system =
  List.fold_left (fun acc (_, cs) -> acc * List.length cs) 1 (site_options system)

let group_of linkage iid =
  List.find_opt (List.exists (I.Interface_id.equal iid)) linkage

let check_linkage system linkage =
  List.iter
    (fun group ->
      List.iter
        (fun iid ->
          if Option.is_none (System.find_site iid system) then
            invalid_arg
              (Format.asprintf "Variant_space: unknown interface %a in linkage"
                 I.Interface_id.pp iid))
        group)
    linkage

(* Choice dimensions: one per linkage group (an index shared by its
   members) and one per independent site. *)
type dimension =
  | Group of I.Interface_id.t list * int  (** members, variant count *)
  | Single of I.Interface_id.t * I.Cluster_id.t list

let dimensions system linkage =
  check_linkage system linkage;
  let options = site_options system in
  let in_some_group iid = Option.is_some (group_of linkage iid) in
  let singles =
    List.filter_map
      (fun (iid, cs) -> if in_some_group iid then None else Some (Single (iid, cs)))
      options
  in
  let groups =
    List.map
      (fun group ->
        let counts =
          List.filter_map
            (fun iid ->
              List.find_map
                (fun (i, cs) ->
                  if I.Interface_id.equal i iid then Some (List.length cs)
                  else None)
                options)
            group
        in
        let count = List.fold_left min max_int counts in
        let count = if count = max_int then 0 else count in
        Group (group, count))
      linkage
  in
  singles @ groups

let rec product = function
  | [] -> [ [] ]
  | options :: rest ->
    let tails = product rest in
    List.concat_map (fun opt -> List.map (fun tail -> opt @ tail) tails) options

let site_of system iid =
  match System.find_site iid system with
  | None -> invalid_arg "Variant_space: unknown interface"
  | Some site -> site

let cluster_at system iid index =
  List.nth (site_of system iid).Structure.iface.Structure.clusters index

(* A dimension's assignment fragments.  Each fragment carries the full
   subtree choice: a top-level pair plus the (recursive) choices of the
   chosen cluster's embedded interfaces, so hierarchically nested sites
   enumerate exactly like {!Flatten.applications} derives them. *)
let expand_dim system dim =
  match dim with
  | Single (iid, _) ->
    Flatten.interface_assignments (site_of system iid).Structure.iface
  | Group (members, n) ->
    List.concat
      (List.init n (fun idx ->
           product
             (List.map
                (fun iid ->
                  Flatten.cluster_assignments iid (cluster_at system iid idx))
                members)))

let count ?(linkage = []) system =
  List.fold_left
    (fun acc dim -> acc * List.length (expand_dim system dim))
    1
    (dimensions system linkage)

let enumerate ?(linkage = []) system =
  let dims = dimensions system linkage in
  let assignments = product (List.map (expand_dim system) dims) in
  (* Restore canonical order for stable output: depth-first over the
     system's site tree — each top-level site's pair followed by its
     chosen subtree's pairs, sites in site order. *)
  let reorder assignment =
    let lookup iid =
      List.find_opt (fun (i, _) -> I.Interface_id.equal i iid) assignment
    in
    let rec of_site site =
      let iface = site.Structure.iface in
      match lookup iface.Structure.interface_id with
      | None -> []
      | Some ((_, cid) as pair) ->
        pair
        ::
        (match
           List.find_opt
             (fun c -> I.Cluster_id.equal c.Structure.cluster_id cid)
             iface.Structure.clusters
         with
        | Some cluster ->
          List.concat_map of_site cluster.Structure.sub_sites
        | None -> [])
    in
    List.concat_map of_site (System.sites system)
  in
  List.map reorder assignments

let to_choice assignment iid =
  match List.find_opt (fun (i, _) -> I.Interface_id.equal i iid) assignment with
  | Some (_, cid) -> cid
  | None ->
    raise
      (Flatten.Flatten_error
         (Diagnostic.msgf
            ~subject:(I.Interface_id.to_string iid)
            "no cluster assigned for interface %a" I.Interface_id.pp iid))

let pp_assignment ppf assignment =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    (fun ppf (i, c) ->
      Format.fprintf ppf "%a=%a" I.Interface_id.pp i I.Cluster_id.pp c)
    ppf assignment
