module I = Spi.Ids

type assignment = (I.Interface_id.t * I.Cluster_id.t) list
type linkage = I.Interface_id.t list list

let site_options system =
  List.map
    (fun site ->
      let iface = site.Structure.iface in
      ( iface.Structure.interface_id,
        List.map Cluster.id iface.Structure.clusters ))
    (System.sites system)

let independent_count system =
  List.fold_left (fun acc (_, cs) -> acc * List.length cs) 1 (site_options system)

let group_of linkage iid =
  List.find_opt (List.exists (I.Interface_id.equal iid)) linkage

let check_linkage system linkage =
  List.iter
    (fun group ->
      List.iter
        (fun iid ->
          if Option.is_none (System.find_site iid system) then
            invalid_arg
              (Format.asprintf "Variant_space: unknown interface %a in linkage"
                 I.Interface_id.pp iid))
        group)
    linkage

(* Choice dimensions: one per linkage group (an index shared by its
   members) and one per independent site. *)
type dimension =
  | Group of I.Interface_id.t list * int  (** members, variant count *)
  | Single of I.Interface_id.t * I.Cluster_id.t list

let dimensions system linkage =
  check_linkage system linkage;
  let options = site_options system in
  let in_some_group iid = Option.is_some (group_of linkage iid) in
  let singles =
    List.filter_map
      (fun (iid, cs) -> if in_some_group iid then None else Some (Single (iid, cs)))
      options
  in
  let groups =
    List.map
      (fun group ->
        let counts =
          List.filter_map
            (fun iid ->
              List.find_map
                (fun (i, cs) ->
                  if I.Interface_id.equal i iid then Some (List.length cs)
                  else None)
                options)
            group
        in
        let count = List.fold_left min max_int counts in
        let count = if count = max_int then 0 else count in
        Group (group, count))
      linkage
  in
  singles @ groups

let count ?(linkage = []) system =
  List.fold_left
    (fun acc dim ->
      match dim with
      | Single (_, cs) -> acc * List.length cs
      | Group (_, n) -> acc * n)
    1
    (dimensions system linkage)

let cluster_at system iid index =
  match System.find_site iid system with
  | None -> invalid_arg "Variant_space: unknown interface"
  | Some site -> Cluster.id (List.nth site.Structure.iface.Structure.clusters index)

let enumerate ?(linkage = []) system =
  let dims = dimensions system linkage in
  let expand dim =
    match dim with
    | Single (iid, cs) -> List.map (fun c -> [ (iid, c) ]) cs
    | Group (members, n) ->
      List.init n (fun idx ->
          List.map (fun iid -> (iid, cluster_at system iid idx)) members)
  in
  let rec product = function
    | [] -> [ [] ]
    | options :: rest ->
      let tails = product rest in
      List.concat_map (fun opt -> List.map (fun tail -> opt @ tail) tails) options
  in
  let assignments = product (List.map expand dims) in
  (* Restore site order for stable output. *)
  let order = List.map fst (site_options system) in
  List.map
    (fun assignment ->
      List.filter_map
        (fun iid ->
          List.find_opt (fun (i, _) -> I.Interface_id.equal i iid) assignment)
        order)
    assignments

let to_choice assignment iid =
  match List.find_opt (fun (i, _) -> I.Interface_id.equal i iid) assignment with
  | Some (_, cid) -> cid
  | None ->
    raise
      (Flatten.Flatten_error
         (Diagnostic.msgf
            ~subject:(I.Interface_id.to_string iid)
            "no cluster assigned for interface %a" I.Interface_id.pp iid))

let pp_assignment ppf assignment =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    (fun ppf (i, c) ->
      Format.fprintf ppf "%a=%a" I.Interface_id.pp i I.Cluster_id.pp c)
    ppf assignment
