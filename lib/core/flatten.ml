module I = Spi.Ids

type choice = I.Interface_id.t -> I.Cluster_id.t

exception Flatten_error of Diagnostic.t

let error ?subject fmt =
  Format.kasprintf
    (fun message -> raise (Flatten_error (Diagnostic.make ?subject message)))
    fmt

let choice_of_list pairs iid =
  match
    List.find_opt (fun (i, _) -> String.equal i (I.Interface_id.to_string iid)) pairs
  with
  | Some (_, c) -> I.Cluster_id.of_string c
  | None ->
    error ~subject:(I.Interface_id.to_string iid)
      "no cluster chosen for interface %a" I.Interface_id.pp iid

let first_cluster system iid =
  match System.find_site iid system with
  | None ->
    error ~subject:(I.Interface_id.to_string iid) "unknown interface %a"
      I.Interface_id.pp iid
  | Some site -> (
    match site.Structure.iface.Structure.clusters with
    | [] ->
      error ~subject:(I.Interface_id.to_string iid)
        "interface %a has no clusters" I.Interface_id.pp iid
    | c :: _ -> Cluster.id c)

let instantiate_site ~choice site =
  let iface = site.Structure.iface in
  let iid = iface.Structure.interface_id in
  let chosen_id = choice iid in
  let chosen =
    match
      List.find_opt
        (fun c -> I.Cluster_id.equal (Cluster.id c) chosen_id)
        iface.Structure.clusters
    with
    | Some c -> c
    | None ->
      error ~subject:(I.Interface_id.to_string iid)
        "interface %a has no cluster %a" I.Interface_id.pp iid
        I.Cluster_id.pp chosen_id
  in
  try
    Cluster.instantiate
      ~prefix:(I.Interface_id.to_string iid)
      ~port_channels:site.Structure.wiring ~sub_choice:choice chosen
  with Invalid_argument msg ->
    error ~subject:(I.Interface_id.to_string iid) "%s" msg

let flatten system choice =
  let instances = List.map (instantiate_site ~choice) (System.sites system) in
  let processes =
    System.processes system
    @ List.concat_map (fun i -> i.Cluster.inst_processes) instances
  in
  let channels =
    System.channels system
    @ List.concat_map (fun i -> i.Cluster.inst_channels) instances
  in
  Spi.Model.build_exn ~processes ~channels

let rec product = function
  | [] -> [ [] ]
  | options :: rest ->
    let tails = product rest in
    List.concat_map (fun opt -> List.map (fun tail -> opt :: tail) tails) options

(* All (interface, cluster) assignments selecting this cluster,
   including the nested choices of its embedded interfaces. *)
let rec cluster_assignments iface_id (cluster : Structure.cluster) =
  let sub_options =
    List.map
      (fun site -> interface_assignments site.Structure.iface)
      cluster.Structure.sub_sites
  in
  List.map
    (fun tails -> (iface_id, cluster.Structure.cluster_id) :: List.concat tails)
    (product sub_options)

and interface_assignments (iface : Structure.interface) =
  List.concat_map
    (cluster_assignments iface.Structure.interface_id)
    iface.Structure.clusters

let applications system =
  let per_site =
    List.map
      (fun site -> interface_assignments site.Structure.iface)
      (System.sites system)
  in
  List.map
    (fun combos ->
      let combo = List.concat combos in
      let choice iid =
        match List.find_opt (fun (i, _) -> I.Interface_id.equal i iid) combo with
        | Some (_, cid) -> cid
        | None ->
          error ~subject:(I.Interface_id.to_string iid)
            "no cluster chosen for interface %a" I.Interface_id.pp iid
      in
      (List.map snd combo, flatten system choice))
    (product per_site)

let abstract ?granularity system =
  let results =
    List.map
      (fun site ->
        let iface = site.Structure.iface in
        Extraction.extract ?granularity
          ~process_name:(I.Interface_id.to_string iface.Structure.interface_id)
          ~wiring:site.Structure.wiring iface)
      (System.sites system)
  in
  let processes =
    System.processes system
    @ List.map (fun r -> r.Extraction.abstract_process) results
  in
  let model =
    Spi.Model.build_exn ~processes ~channels:(System.channels system)
  in
  (model, List.map (fun r -> r.Extraction.configurations) results)

let flatten_result system choice =
  match flatten system choice with
  | model -> Ok model
  | exception Flatten_error d -> Error d
  | exception Invalid_argument m -> Error (Diagnostic.make m)

let applications_result system =
  match applications system with
  | apps -> Ok apps
  | exception Flatten_error d -> Error d
  | exception Invalid_argument m -> Error (Diagnostic.make m)

let abstract_result ?granularity system =
  match abstract ?granularity system with
  | r -> Ok r
  | exception Flatten_error d -> Error d
  | exception Extraction.Extraction_error d -> Error d
  | exception Invalid_argument m -> Error (Diagnostic.make m)
