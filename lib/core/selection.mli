(** Cluster selection functions (Def. 3).

    A selection function maps input-token predicates to clusters; it is
    evaluated against the state of the channels wired to the interface's
    input ports.  Each interface/cluster pair has a configuration
    latency [t_conf], and the interface carries a parameter [cur] naming
    the currently selected cluster. *)

val rule :
  string -> guard:Spi.Predicate.t -> target:Spi.Ids.Cluster_id.t -> Structure.selection_rule

val make :
  ?config_latencies:(Spi.Ids.Cluster_id.t * int) list ->
  ?initial:Spi.Ids.Cluster_id.t ->
  Structure.selection_rule list ->
  Structure.selection

val rules : Structure.selection -> Structure.selection_rule list

val select :
  Spi.Predicate.view -> Structure.selection -> Structure.selection_rule option
(** First rule whose guard holds.  The paper assumes correct models in
    which rules are mutually exclusive; order resolves residual
    overlaps deterministically. *)

val select_cluster :
  Spi.Predicate.view -> Structure.selection -> Spi.Ids.Cluster_id.t option

val config_latency : Structure.selection -> Spi.Ids.Cluster_id.t -> int
(** [t_conf] for the given cluster; 0 when unspecified. *)

val initial : Structure.selection -> Spi.Ids.Cluster_id.t option

(** The run-time value of the [cur] parameter: the currently selected
    cluster of an interface, or none before the first selection. *)
type cur = Spi.Ids.Cluster_id.t option

val requires_reconfiguration : cur -> Spi.Ids.Cluster_id.t -> bool
(** True when selecting [next] differs from the current cluster — a
    (re)configuration step with latency [t_conf] must be inserted. *)

val fallback_cluster :
  ?avoid:Spi.Ids.Cluster_id.t -> Structure.selection -> Spi.Ids.Cluster_id.t option
(** The designated fallback cluster for graceful degradation: when the
    currently selected cluster ([avoid]) fails, the watchdog consults
    the selection function and reconfigures the interface to the first
    rule target different from it (falling back to the declared initial
    cluster).  Mirrored at the abstracted level by
    {!Configuration.fallback}. *)

val observed_channels : Structure.selection -> Spi.Ids.Channel_id.Set.t

val map_channels :
  (Spi.Ids.Channel_id.t -> Spi.Ids.Channel_id.t) ->
  Structure.selection ->
  Structure.selection
(** Renames channel references in the guards — applied when wiring the
    interface's ports to concrete host channels. *)

val pp : Format.formatter -> Structure.selection -> unit
