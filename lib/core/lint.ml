module I = Spi.Ids

type severity = Error | Warning | Info

type finding = { severity : severity; scope : string; message : string }
type t = { findings : finding list; errors : int; warnings : int }

let finding severity scope fmt =
  Format.kasprintf (fun message -> { severity; scope; message }) fmt

let structural system =
  List.map
    (fun e -> finding Error "system" "%a" System.pp_error e)
    (System.validate system)

let selection_checks system =
  List.concat_map
    (fun iface ->
      let scope =
        Format.asprintf "interface %a" I.Interface_id.pp (Interface.id iface)
      in
      let ambiguity =
        List.map
          (fun (r1, r2) ->
            finding Warning scope
              "selection rules %a and %a are not provably disjoint"
              I.Rule_id.pp r1 I.Rule_id.pp r2)
          (Interface.ambiguous_selection_pairs iface)
      in
      let missing_latency =
        match Interface.selection iface with
        | None -> []
        | Some sel ->
          List.filter_map
            (fun cluster ->
              let cid = Cluster.id cluster in
              if Selection.config_latency sel cid = 0 then
                Some
                  (finding Info scope
                     "cluster %a has no configuration latency (defaults to 0)"
                     I.Cluster_id.pp cid)
              else None)
            (Interface.clusters iface)
      in
      ambiguity @ missing_latency)
    (System.interfaces system)

let extraction_checks system =
  List.concat_map
    (fun site ->
      let iface = site.Structure.iface in
      let scope =
        Format.asprintf "interface %a" I.Interface_id.pp
          iface.Structure.interface_id
      in
      try
        let r =
          Extraction.extract
            ~process_name:
              (I.Interface_id.to_string iface.Structure.interface_id)
            ~wiring:site.Structure.wiring iface
        in
        List.map
          (fun e ->
            finding Error scope "extraction inconsistency: %a"
              Configuration.pp_error e)
          (Configuration.validate_against r.Extraction.abstract_process
             r.Extraction.configurations)
        @ List.map
            (fun (r1, r2) ->
              finding Warning scope
                "extracted activation rules %a and %a are not provably disjoint"
                I.Rule_id.pp r1 I.Rule_id.pp r2)
            (Spi.Activation.ambiguous_pairs
               (Spi.Process.activation r.Extraction.abstract_process))
      with
      | Extraction.Extraction_error d ->
        [ finding Error scope "extraction failed: %s" (Diagnostic.to_string d) ]
      | Invalid_argument m ->
        [ finding Error scope "extraction failed: %s" m ])
    (System.sites system)

let application_checks system =
  try
    List.concat_map
      (fun (clusters, model) ->
        let scope =
          String.concat "+" (List.map I.Cluster_id.to_string clusters)
        in
        let balance =
          List.filter_map
            (fun (cid, b) ->
              match b with
              | Spi.Analysis.Accumulating { surplus } ->
                Some
                  (finding Warning scope
                     "channel %a accumulates %d tokens per execution"
                     I.Channel_id.pp cid surplus)
              | Spi.Analysis.Starving { deficit } ->
                Some
                  (finding Warning scope
                     "channel %a starves its reader by %d tokens per execution"
                     I.Channel_id.pp cid deficit)
              | Spi.Analysis.Balanced | Spi.Analysis.Boundary -> None)
            (Spi.Analysis.balance_report model)
        in
        let deadlocks =
          List.map
            (fun comp ->
              finding Error scope "structural deadlock candidate: {%s}"
                (String.concat ", " (List.map I.Process_id.to_string comp)))
            (Spi.Analysis.deadlock_candidates model)
        in
        let latency_of pid =
          match Spi.Model.find_process pid model with
          | Some p -> Interval.hi (Spi.Process.latency_hull p)
          | None -> 0
        in
        let timing =
          List.filter_map
            (fun (c, o) ->
              match o with
              | Spi.Constraint_.Violated { worst; excess } ->
                Some
                  (finding Error scope
                     "deadline %s violated: worst %d exceeds bound by %d"
                     c.Spi.Constraint_.name worst excess)
              | Spi.Constraint_.Cyclic _ ->
                Some
                  (finding Warning scope
                     "deadline %s crosses a cyclic region: unbounded statically"
                     c.Spi.Constraint_.name)
              | Spi.Constraint_.Unreachable ->
                Some
                  (finding Warning scope
                     "deadline %s endpoints are not connected"
                     c.Spi.Constraint_.name)
              | Spi.Constraint_.Satisfied _ -> None)
            (Spi.Constraint_.check_all ~latency_of model
               (System.constraints system))
        in
        balance @ deadlocks @ timing)
      (Flatten.applications system)
  with
  | Flatten.Flatten_error d ->
    [
      finding Error "system" "could not derive applications: %s"
        (Diagnostic.to_string d);
    ]
  | Invalid_argument m ->
    [ finding Error "system" "could not derive applications: %s" m ]

let run system =
  let findings =
    match structural system with
    | _ :: _ as errors -> errors (* structure broken: stop here *)
    | [] -> selection_checks system @ extraction_checks system @ application_checks system
  in
  let count s = List.length (List.filter (fun f -> f.severity = s) findings) in
  { findings; errors = count Error; warnings = count Warning }

let is_clean t = t.errors = 0

let pp_severity ppf = function
  | Error -> Format.pp_print_string ppf "error"
  | Warning -> Format.pp_print_string ppf "warning"
  | Info -> Format.pp_print_string ppf "info"

let pp_finding ppf f =
  Format.fprintf ppf "[%a] %s: %s" pp_severity f.severity f.scope f.message

let pp ppf t =
  if t.findings = [] then Format.fprintf ppf "clean: no findings@."
  else begin
    List.iter (fun f -> Format.fprintf ppf "%a@." pp_finding f) t.findings;
    Format.fprintf ppf "%d errors, %d warnings@." t.errors t.warnings
  end
