type args = (string * Json.t) list

type event =
  | Complete of {
      name : string;
      cat : string;
      pid : int;
      tid : int;
      ts : float;
      dur : float;
      args : args;
    }
  | Begin of {
      name : string;
      cat : string;
      pid : int;
      tid : int;
      ts : float;
      args : args;
    }
  | End of { pid : int; tid : int; ts : float }
  | Instant of {
      name : string;
      cat : string;
      pid : int;
      tid : int;
      ts : float;
      args : args;
    }
  | Counter of {
      name : string;
      pid : int;
      ts : float;
      values : (string * float) list;
    }
  | Flow_start of {
      name : string;
      id : int;
      pid : int;
      tid : int;
      ts : float;
    }
  | Flow_end of { name : string; id : int; pid : int; tid : int; ts : float }

(* Metadata (lane names, ordering) is kept separate from the event
   stream so it can be emitted first regardless of when the converter
   learned a lane's name. *)
type metadata =
  | Process_name of { pid : int; name : string }
  | Thread_name of { pid : int; tid : int; name : string }
  | Thread_order of { pid : int; tid : int; index : int }

type t = { mutable events : event list; mutable meta : metadata list }

let create () = { events = []; meta = [] }
let add t e = t.events <- e :: t.events

let set_process_name t ~pid name =
  t.meta <- Process_name { pid; name } :: t.meta

let set_thread_name t ~pid ~tid name =
  t.meta <- Thread_name { pid; tid; name } :: t.meta

let set_thread_order t ~pid ~tid index =
  t.meta <- Thread_order { pid; tid; index } :: t.meta

let length t = List.length t.events
let events t = List.rev t.events
let metadata t = List.rev t.meta

(* A sink decouples converters (Timeline, Domain_trace) from where the
   records go: a buffered collection or an incremental Trace_stream. *)
type sink = { event : event -> unit; meta : metadata -> unit }

let buffer_sink t = { event = add t; meta = (fun m -> t.meta <- m :: t.meta) }

let sink_process_name s ~pid name = s.meta (Process_name { pid; name })

let sink_thread_name s ~pid ~tid name =
  s.meta (Thread_name { pid; tid; name })

let sink_thread_order s ~pid ~tid index =
  s.meta (Thread_order { pid; tid; index })

let schema = "trace/v1"

let ts_of = function
  | Complete { ts; _ }
  | Begin { ts; _ }
  | End { ts; _ }
  | Instant { ts; _ }
  | Counter { ts; _ }
  | Flow_start { ts; _ }
  | Flow_end { ts; _ } -> ts

let pid_of = function
  | Complete { pid; _ }
  | Begin { pid; _ }
  | End { pid; _ }
  | Instant { pid; _ }
  | Counter { pid; _ }
  | Flow_start { pid; _ }
  | Flow_end { pid; _ } -> pid

let metadata_pid = function
  | Process_name { pid; _ } | Thread_name { pid; _ } | Thread_order { pid; _ }
    -> pid

let args_field = function
  | [] -> []
  | args -> [ ("args", Json.Obj args) ]

let event_json = function
  | Complete { name; cat; pid; tid; ts; dur; args } ->
    Json.Obj
      ([
         ("name", Json.String name);
         ("cat", Json.String cat);
         ("ph", Json.String "X");
         ("ts", Json.Float ts);
         ("dur", Json.Float (Float.max 0. dur));
         ("pid", Json.Int pid);
         ("tid", Json.Int tid);
       ]
      @ args_field args)
  | Begin { name; cat; pid; tid; ts; args } ->
    Json.Obj
      ([
         ("name", Json.String name);
         ("cat", Json.String cat);
         ("ph", Json.String "B");
         ("ts", Json.Float ts);
         ("pid", Json.Int pid);
         ("tid", Json.Int tid);
       ]
      @ args_field args)
  | End { pid; tid; ts } ->
    Json.Obj
      [
        ("ph", Json.String "E");
        ("ts", Json.Float ts);
        ("pid", Json.Int pid);
        ("tid", Json.Int tid);
      ]
  | Instant { name; cat; pid; tid; ts; args } ->
    Json.Obj
      ([
         ("name", Json.String name);
         ("cat", Json.String cat);
         ("ph", Json.String "i");
         ("s", Json.String "t");
         ("ts", Json.Float ts);
         ("pid", Json.Int pid);
         ("tid", Json.Int tid);
       ]
      @ args_field args)
  | Counter { name; pid; ts; values } ->
    Json.Obj
      [
        ("name", Json.String name);
        ("ph", Json.String "C");
        ("ts", Json.Float ts);
        ("pid", Json.Int pid);
        ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) values));
      ]
  | Flow_start { name; id; pid; tid; ts } ->
    Json.Obj
      [
        ("name", Json.String name);
        ("cat", Json.String "flow");
        ("ph", Json.String "s");
        ("id", Json.Int id);
        ("ts", Json.Float ts);
        ("pid", Json.Int pid);
        ("tid", Json.Int tid);
      ]
  | Flow_end { name; id; pid; tid; ts } ->
    Json.Obj
      [
        ("name", Json.String name);
        ("cat", Json.String "flow");
        ("ph", Json.String "f");
        ("bp", Json.String "e");
        ("id", Json.Int id);
        ("ts", Json.Float ts);
        ("pid", Json.Int pid);
        ("tid", Json.Int tid);
      ]

let metadata_json = function
  | Process_name { pid; name } ->
    Json.Obj
      [
        ("name", Json.String "process_name");
        ("ph", Json.String "M");
        ("pid", Json.Int pid);
        ("args", Json.Obj [ ("name", Json.String name) ]);
      ]
  | Thread_name { pid; tid; name } ->
    Json.Obj
      [
        ("name", Json.String "thread_name");
        ("ph", Json.String "M");
        ("pid", Json.Int pid);
        ("tid", Json.Int tid);
        ("args", Json.Obj [ ("name", Json.String name) ]);
      ]
  | Thread_order { pid; tid; index } ->
    Json.Obj
      [
        ("name", Json.String "thread_sort_index");
        ("ph", Json.String "M");
        ("pid", Json.Int pid);
        ("tid", Json.Int tid);
        ("args", Json.Obj [ ("sort_index", Json.Int index) ]);
      ]

(* Canonical ordering: one contiguous segment per [pid], pids in first
   appearance order (metadata scanned before events), each segment its
   metadata in insertion order followed by its events stable-sorted by
   timestamp.  Segments are what {!Trace_stream} can emit incrementally
   — a run's lanes flush as a unit while later runs are still
   executing — and the buffered exporter uses the identical layout so
   the two paths produce byte-equal files. *)
let segment_order ~metadata ~events =
  let seen = Hashtbl.create 8 in
  let order = ref [] in
  let note pid =
    if not (Hashtbl.mem seen pid) then begin
      Hashtbl.add seen pid ();
      order := pid :: !order
    end
  in
  List.iter (fun m -> note (metadata_pid m)) metadata;
  List.iter (fun e -> note (pid_of e)) events;
  List.rev !order

let segment_json ~metadata ~events =
  let sorted =
    List.stable_sort (fun a b -> Float.compare (ts_of a) (ts_of b)) events
  in
  List.map metadata_json metadata @ List.map event_json sorted

let to_json t =
  let metadata = metadata t and events = events t in
  let items =
    List.concat_map
      (fun pid ->
        segment_json
          ~metadata:(List.filter (fun m -> metadata_pid m = pid) metadata)
          ~events:(List.filter (fun e -> pid_of e = pid) events))
      (segment_order ~metadata ~events)
  in
  Json.Obj
    [
      ("schema", Json.String schema);
      ("displayTimeUnit", Json.String "ms");
      ("traceEvents", Json.List items);
    ]

let to_file path t =
  Atomic_file.write path (Json.to_string ~minify:false (to_json t) ^ "\n")
