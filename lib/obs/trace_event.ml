type args = (string * Json.t) list

type event =
  | Complete of {
      name : string;
      cat : string;
      pid : int;
      tid : int;
      ts : float;
      dur : float;
      args : args;
    }
  | Begin of {
      name : string;
      cat : string;
      pid : int;
      tid : int;
      ts : float;
      args : args;
    }
  | End of { pid : int; tid : int; ts : float }
  | Instant of {
      name : string;
      cat : string;
      pid : int;
      tid : int;
      ts : float;
      args : args;
    }
  | Counter of {
      name : string;
      pid : int;
      ts : float;
      values : (string * float) list;
    }
  | Flow_start of {
      name : string;
      id : int;
      pid : int;
      tid : int;
      ts : float;
    }
  | Flow_end of { name : string; id : int; pid : int; tid : int; ts : float }

(* Metadata (lane names, ordering) is kept separate from the event
   stream so it can be emitted first regardless of when the converter
   learned a lane's name. *)
type metadata =
  | Process_name of { pid : int; name : string }
  | Thread_name of { pid : int; tid : int; name : string }
  | Thread_order of { pid : int; tid : int; index : int }

type t = { mutable events : event list; mutable meta : metadata list }

let create () = { events = []; meta = [] }
let add t e = t.events <- e :: t.events

let set_process_name t ~pid name =
  t.meta <- Process_name { pid; name } :: t.meta

let set_thread_name t ~pid ~tid name =
  t.meta <- Thread_name { pid; tid; name } :: t.meta

let set_thread_order t ~pid ~tid index =
  t.meta <- Thread_order { pid; tid; index } :: t.meta

let length t = List.length t.events
let events t = List.rev t.events

let schema = "trace/v1"

let ts_of = function
  | Complete { ts; _ }
  | Begin { ts; _ }
  | End { ts; _ }
  | Instant { ts; _ }
  | Counter { ts; _ }
  | Flow_start { ts; _ }
  | Flow_end { ts; _ } -> ts

let args_field = function
  | [] -> []
  | args -> [ ("args", Json.Obj args) ]

let event_json = function
  | Complete { name; cat; pid; tid; ts; dur; args } ->
    Json.Obj
      ([
         ("name", Json.String name);
         ("cat", Json.String cat);
         ("ph", Json.String "X");
         ("ts", Json.Float ts);
         ("dur", Json.Float (Float.max 0. dur));
         ("pid", Json.Int pid);
         ("tid", Json.Int tid);
       ]
      @ args_field args)
  | Begin { name; cat; pid; tid; ts; args } ->
    Json.Obj
      ([
         ("name", Json.String name);
         ("cat", Json.String cat);
         ("ph", Json.String "B");
         ("ts", Json.Float ts);
         ("pid", Json.Int pid);
         ("tid", Json.Int tid);
       ]
      @ args_field args)
  | End { pid; tid; ts } ->
    Json.Obj
      [
        ("ph", Json.String "E");
        ("ts", Json.Float ts);
        ("pid", Json.Int pid);
        ("tid", Json.Int tid);
      ]
  | Instant { name; cat; pid; tid; ts; args } ->
    Json.Obj
      ([
         ("name", Json.String name);
         ("cat", Json.String cat);
         ("ph", Json.String "i");
         ("s", Json.String "t");
         ("ts", Json.Float ts);
         ("pid", Json.Int pid);
         ("tid", Json.Int tid);
       ]
      @ args_field args)
  | Counter { name; pid; ts; values } ->
    Json.Obj
      [
        ("name", Json.String name);
        ("ph", Json.String "C");
        ("ts", Json.Float ts);
        ("pid", Json.Int pid);
        ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) values));
      ]
  | Flow_start { name; id; pid; tid; ts } ->
    Json.Obj
      [
        ("name", Json.String name);
        ("cat", Json.String "flow");
        ("ph", Json.String "s");
        ("id", Json.Int id);
        ("ts", Json.Float ts);
        ("pid", Json.Int pid);
        ("tid", Json.Int tid);
      ]
  | Flow_end { name; id; pid; tid; ts } ->
    Json.Obj
      [
        ("name", Json.String name);
        ("cat", Json.String "flow");
        ("ph", Json.String "f");
        ("bp", Json.String "e");
        ("id", Json.Int id);
        ("ts", Json.Float ts);
        ("pid", Json.Int pid);
        ("tid", Json.Int tid);
      ]

let meta_json = function
  | Process_name { pid; name } ->
    Json.Obj
      [
        ("name", Json.String "process_name");
        ("ph", Json.String "M");
        ("pid", Json.Int pid);
        ("args", Json.Obj [ ("name", Json.String name) ]);
      ]
  | Thread_name { pid; tid; name } ->
    Json.Obj
      [
        ("name", Json.String "thread_name");
        ("ph", Json.String "M");
        ("pid", Json.Int pid);
        ("tid", Json.Int tid);
        ("args", Json.Obj [ ("name", Json.String name) ]);
      ]
  | Thread_order { pid; tid; index } ->
    Json.Obj
      [
        ("name", Json.String "thread_sort_index");
        ("ph", Json.String "M");
        ("pid", Json.Int pid);
        ("tid", Json.Int tid);
        ("args", Json.Obj [ ("sort_index", Json.Int index) ]);
      ]

let to_json t =
  let sorted =
    List.stable_sort (fun a b -> Float.compare (ts_of a) (ts_of b)) (events t)
  in
  Json.Obj
    [
      ("schema", Json.String schema);
      ("displayTimeUnit", Json.String "ms");
      ( "traceEvents",
        Json.List
          (List.map meta_json (List.rev t.meta)
          @ List.map event_json sorted) );
    ]

let to_file path t =
  Atomic_file.write path (Json.to_string ~minify:false (to_json t) ^ "\n")
