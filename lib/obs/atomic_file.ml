(* Durability has two halves: fsync the temporary file before the
   rename (the *contents* reach disk before the name does), and fsync
   the containing directory after it (the rename itself — the directory
   entry — reaches disk).  Without the second fsync a crash shortly
   after [write] can leave the *old* file at [path] even though the
   call returned: rename is atomic in the namespace, not durable. *)

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error (_, _, _) -> ()
  | fd ->
    (* Some filesystems refuse fsync on a directory fd (EINVAL); that
       is a property of the mount, not a failed write. *)
    (try Unix.fsync fd with Unix.Unix_error (_, _, _) -> ());
    (try Unix.close fd with Unix.Unix_error (_, _, _) -> ())

let write path contents =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let oc = open_out_bin tmp in
  (try
     output_string oc contents;
     flush oc;
     (try Unix.fsync (Unix.descr_of_out_channel oc)
      with Unix.Unix_error (_, _, _) -> ());
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  (try Sys.rename tmp path
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  fsync_dir (Filename.dirname path)
