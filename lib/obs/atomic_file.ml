let write path contents =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let oc = open_out_bin tmp in
  (try
     output_string oc contents;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  try Sys.rename tmp path
  with e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e
