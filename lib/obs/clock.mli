(** Monotonic time source for metric timers and spans.

    Backed by [CLOCK_MONOTONIC] (via bechamel's stub); readings are in
    nanoseconds since an arbitrary epoch and never go backwards, so
    differences are safe across suspends and NTP slews — unlike
    [Unix.gettimeofday]. *)

val now_ns : unit -> int
(** Current monotonic reading in nanoseconds.  Fits an OCaml [int]
    (63-bit) for ~292 years of uptime. *)

val elapsed_ns : int -> int
(** [elapsed_ns t0] is [now_ns () - t0], clamped to be non-negative. *)

val ns_to_s : int -> float
(** Nanoseconds to seconds. *)
