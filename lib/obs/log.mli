(** Leveled, structured JSON logs — the [log/v1] schema.

    Each line is one minified JSON object:

    {v
    {"schema":"log/v1","ts_ns":123,"level":"info",
     "event":"serve.request.completed","fields":{...}}
    v}

    [ts_ns] is the monotonic clock ({!Clock.now_ns}), the same domain
    every other duration in this repository lives in.  Event names
    follow the metric convention: dot-separated, subsystem first
    ([serve.request.shed], [client.retry], [store.replayed]).

    Emission is thread-safe (pool domains share the sink) and
    rate-limited per event name by a token bucket, so an overloaded
    daemon logs a bounded number of lines per second; suppressed lines
    are counted — in the [log.suppressed] counter and as a
    ["suppressed"] field on the next permitted line of the same event —
    never silently thinned. *)

type level = Debug | Info | Warn | Error

val level_to_string : level -> string

val level_of_string : string -> level option

val set_level : level -> unit
(** Minimum level that reaches the sink.  Default: [Warn] — library
    code can always emit; only the daemon (or [--log-level]) opts into
    the chattier levels. *)

val enabled : level -> bool

val set_sink : (string -> unit) option -> unit
(** Where lines go: [Some f] calls [f line] (no newline) under the
    emission lock, [None] disables output entirely.  Default: stderr,
    flushed per line. *)

val channel_sink : out_channel -> string -> unit
(** A sink writing ["line\n"] to the channel and flushing — pass
    partially applied: [set_sink (Some (channel_sink oc))]. *)

val default_burst : float
val default_per_s : float

val set_rate : burst:float -> per_s:float -> unit
(** Token-bucket parameters applied per event name (default: burst 64,
    128 lines/s).  Resets all buckets.
    @raise Invalid_argument when [burst < 1] or [per_s < 0]. *)

val emit : ?level:level -> string -> (string * Json.t) list -> unit
(** [emit event fields] writes one [log/v1] line ([level] defaults to
    [Info]) if the level passes and the event's bucket admits it. *)

val render :
  ts_ns:int ->
  level:level ->
  event:string ->
  suppressed:int ->
  (string * Json.t) list ->
  string
(** The line serializer, exposed for the schema validator tests. *)
