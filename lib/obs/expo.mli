(** Prometheus text exposition of the registry.

    {!render} walks {!Registry.bindings} and emits the standard
    [text/plain; version 0.0.4] format: one [# TYPE] header per metric,
    counters and gauges as bare samples, histograms as cumulative
    [_bucket{le="..."}] series over the power-of-two bucket upper
    bounds (always ending in [le="+Inf"]) plus [_sum] and [_count].

    Names keep their dotted registry spelling with every character
    outside [[a-zA-Z0-9_:]] replaced by ['_'] —
    [serve.queue_wait_ns] scrapes as [serve_queue_wait_ns].

    The serve daemon returns this text in the [metrics] verb next to
    the [obs/v1] snapshot; the round-trip against the registry (every
    metric present, buckets cumulative and monotone, [+Inf] equal to
    the count) is property-tested in [test/test_obs.ml]. *)

val render : unit -> string

val sanitize : string -> string
(** The name mapping, exposed for tests and the validator. *)

val bucket_upper_of_lower : int -> int
(** Upper bound of the power-of-two bucket whose lower bound is the
    argument ([0 -> 0], [lo -> 2*lo - 1]). *)
