(* Prometheus text exposition (text/plain; version 0.0.4) rendered
   straight from the registry.  Metric names keep their dotted registry
   spelling with every character outside [a-zA-Z0-9_:] mapped to '_'
   (so [serve.queue_wait_ns] scrapes as [serve_queue_wait_ns]);
   histograms are emitted as the standard cumulative [_bucket{le=...}]
   series over the power-of-two bucket uppers, plus [_sum]/[_count]. *)

let sanitize name =
  let b = Bytes.of_string name in
  for i = 0 to Bytes.length b - 1 do
    match Bytes.get b i with
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> ()
    | _ -> Bytes.set b i '_'
  done;
  let s = Bytes.unsafe_to_string b in
  match name.[0] with '0' .. '9' -> "_" ^ s | _ -> s

(* upper bound of the power-of-two bucket with lower bound [lo] *)
let bucket_upper_of_lower lo = if lo = 0 then 0 else (2 * lo) - 1

let render_entry buf name entry =
  let n = sanitize name in
  let head kind = Printf.bprintf buf "# TYPE %s %s\n" n kind in
  match entry with
  | Registry.Counter c ->
    head "counter";
    Printf.bprintf buf "%s %d\n" n (Metric.value c)
  | Registry.Gauge g ->
    head "gauge";
    Printf.bprintf buf "%s %d\n" n (Metric.gauge_value g)
  | Registry.Histogram h ->
    head "histogram";
    let cumulative = ref 0 in
    List.iter
      (fun (lo, count) ->
        cumulative := !cumulative + count;
        Printf.bprintf buf "%s_bucket{le=\"%d\"} %d\n" n
          (bucket_upper_of_lower lo) !cumulative)
      (Metric.buckets h);
    Printf.bprintf buf "%s_bucket{le=\"+Inf\"} %d\n" n (Metric.count h);
    Printf.bprintf buf "%s_sum %d\n" n (Metric.sum h);
    Printf.bprintf buf "%s_count %d\n" n (Metric.count h)

let render () =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (name, entry) -> render_entry buf name entry)
    (Registry.bindings ());
  Buffer.contents buf
