let now_ns () = Int64.to_int (Monotonic_clock.now ())
let elapsed_ns t0 = max 0 (now_ns () - t0)
let ns_to_s ns = float_of_int ns /. 1e9
