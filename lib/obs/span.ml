type span = { name : string; domain : int; start_ns : int; dur_ns : int }

type ring = { slots : span option array; cursor : int Atomic.t }

let create ~capacity =
  if capacity < 1 then invalid_arg "Span.create: capacity < 1";
  { slots = Array.make capacity None; cursor = Atomic.make 0 }

let capacity r = Array.length r.slots

let record r span =
  let i = Atomic.fetch_and_add r.cursor 1 in
  r.slots.(i mod Array.length r.slots) <- Some span

let recorded r = Atomic.get r.cursor
let dropped r = max 0 (Atomic.get r.cursor - Array.length r.slots)

let contents r =
  let cap = Array.length r.slots in
  let next = Atomic.get r.cursor in
  (* oldest retained slot: [next - cap] when the ring has wrapped *)
  let first = max 0 (next - cap) in
  let out = ref [] in
  for i = next - 1 downto first do
    match r.slots.(i mod cap) with
    | Some s -> out := s :: !out
    | None -> ()
  done;
  !out

let clear r =
  Array.fill r.slots 0 (Array.length r.slots) None;
  Atomic.set r.cursor 0
