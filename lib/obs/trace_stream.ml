module T = Trace_event

(* Per-pid buffered segment awaiting flush.  Lists are kept reversed
   (push at head) and reversed once at flush. *)
type segment = {
  mutable metas : T.metadata list;
  mutable events : T.event list;
}

type t = {
  path : string;
  tmp : string;
  oc : out_channel;
  mutable first_item : bool;  (* next item is the first in traceEvents *)
  mutable count : int;  (* events written or pending (metadata excluded) *)
  mutable order : int list;  (* pids, first-appearance order, reversed *)
  pending : (int, segment) Hashtbl.t;
  mutable closed : bool;
}

let header =
  "{\n  \"schema\": \"" ^ T.schema
  ^ "\",\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": "

let create path =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let oc = open_out_bin tmp in
  output_string oc header;
  {
    path;
    tmp;
    oc;
    first_item = true;
    count = 0;
    order = [];
    pending = Hashtbl.create 8;
    closed = false;
  }

let segment_of t pid =
  match Hashtbl.find_opt t.pending pid with
  | Some s -> s
  | None ->
    let s = { metas = []; events = [] } in
    Hashtbl.replace t.pending pid s;
    t.order <- pid :: t.order;
    s

let check_open t op =
  if t.closed then invalid_arg ("Trace_stream." ^ op ^ ": stream is closed")

let sink t =
  {
    T.event =
      (fun e ->
        check_open t "sink";
        let s = segment_of t (T.pid_of e) in
        s.events <- e :: s.events;
        t.count <- t.count + 1);
    T.meta =
      (fun m ->
        check_open t "sink";
        let s = segment_of t (T.metadata_pid m) in
        s.metas <- m :: s.metas);
  }

(* Items sit two levels deep ([root obj] > [traceEvents]), so each gets
   a 4-space lead and is rendered at depth 2 — the exact bytes
   [Json.to_string ~minify:false] puts there on the buffered path. *)
let write_item t json =
  if t.first_item then begin
    output_string t.oc "[\n";
    t.first_item <- false
  end
  else output_string t.oc ",\n";
  output_string t.oc "    ";
  output_string t.oc (Json.to_string ~minify:false ~depth:2 json)

let flush t =
  check_open t "flush";
  List.iter
    (fun pid ->
      match Hashtbl.find_opt t.pending pid with
      | None -> ()
      | Some s ->
        Hashtbl.remove t.pending pid;
        List.iter (write_item t)
          (T.segment_json ~metadata:(List.rev s.metas)
             ~events:(List.rev s.events)))
    (List.rev t.order);
  Stdlib.flush t.oc

let close t =
  check_open t "close";
  flush t;
  if t.first_item then output_string t.oc "[]\n}\n"
  else output_string t.oc "\n  ]\n}\n";
  t.closed <- true;
  (try close_out t.oc
   with e ->
     (try Sys.remove t.tmp with Sys_error _ -> ());
     raise e);
  (try Sys.rename t.tmp t.path
   with e ->
     (try Sys.remove t.tmp with Sys_error _ -> ());
     raise e);
  t.count

let abort t =
  if not t.closed then begin
    t.closed <- true;
    close_out_noerr t.oc;
    try Sys.remove t.tmp with Sys_error _ -> ()
  end
