(** Minimal JSON values: just enough for the [obs/v1] metric snapshots
    and the [bench-explore/v1] trajectory records, with no external
    dependency.

    Numbers are split into [Int] and [Float] on parsing (a literal with
    a fraction or exponent becomes [Float]); emission preserves the
    distinction so snapshots round-trip exactly. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list  (** insertion order is preserved *)

(** {1 Emission} *)

val to_string : ?minify:bool -> ?depth:int -> t -> string
(** [minify] defaults to [true]; when [false] the output is indented
    with two spaces per level.  [depth] (default 0) renders the value as
    if it were already nested that many levels deep — continuation lines
    are indented by [2 * (depth + …)] spaces while the first token gets
    no leading pad — so an incremental writer ({!Trace_stream}) can emit
    elements one at a time yet byte-match a single [to_string] of the
    whole document. *)

val pp : Format.formatter -> t -> unit
(** Indented form. *)

(** {1 Parsing} *)

val parse : string -> (t, string) result
(** Strict parser for the subset this library emits: objects, arrays,
    strings with the usual escapes, numbers, booleans and null.  The
    error string carries a byte offset. *)

(** {1 Accessors} *)

val member : string -> t -> t option
(** [member key (Obj _)] is the first binding of [key]; [None] on
    missing keys and non-objects. *)

val to_int : t -> int option
(** [Int n] gives [n]; [Float f] gives [int_of_float f] when [f] is
    integral. *)

val to_float : t -> float option
(** [Float] or [Int], widened. *)

val to_list : t -> t list option
val to_string_opt : t -> string option
val to_bool : t -> bool option
