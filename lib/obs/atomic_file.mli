(** Atomic whole-file writes.

    Snapshots ([--metrics], [--trace]) are read by other processes —
    CI gates, trace viewers, the serve smoke test — possibly while the
    writer is mid-flight or about to be killed.  Writing to a temporary
    file in the same directory and renaming it over the target makes
    the update all-or-nothing: readers see either the previous complete
    file or the new complete file, never a torn prefix. *)

val write : string -> string -> unit
(** [write path contents] replaces [path] with [contents] atomically
    and durably: the temporary file is fsynced before the rename and
    the containing directory is fsynced after it, so a crash right
    after [write] returns cannot resurrect the old contents.  The
    temporary file lives next to [path] (rename is only atomic within
    a filesystem) and is removed if the write fails.  Filesystems that
    reject fsync (e.g. on directory fds) degrade to the plain rename.
    @raise Sys_error when the directory is not writable. *)
