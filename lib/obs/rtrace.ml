(* Request-scoped tracing.  A [t] is minted per served request and
   carries a bounded, lock-free list of spans; the *ambient* context — a
   (trace, parent span id) pair — lives in domain-local storage, so
   instrumentation sites need no plumbing: {!Registry.record_span} and
   {!Registry.with_span} feed whatever trace is active on the recording
   domain.  [Synth.Par] captures the spawning domain's context and
   restores it on every worker, so spans recorded inside pool tasks land
   in the same request tree.

   Everything here is off the hot path: span recording happens once per
   task or per run, and when no trace is active the whole layer costs
   one DLS read per recorded span. *)

type span = {
  id : int;
  parent : int;  (** 0 for the root span *)
  name : string;
  domain : int;
  start_ns : int;
  dur_ns : int;
}

type t = {
  rid : string;
  minted_ns : int;
  next_id : int Atomic.t;
  count : int Atomic.t;
  spans : span list Atomic.t;
  capacity : int;
  dropped : int Atomic.t;
}

let default_capacity = 512

let create ?(capacity = default_capacity) rid =
  if capacity < 1 then invalid_arg "Rtrace.create: capacity < 1";
  {
    rid;
    minted_ns = Clock.now_ns ();
    next_id = Atomic.make 1;
    count = Atomic.make 0;
    spans = Atomic.make [];
    capacity;
    dropped = Atomic.make 0;
  }

let rid t = t.rid
let dropped t = Atomic.get t.dropped

(* ------------------------- ambient context ------------------------- *)

type context = (t * int) option
(* the int is the span id new spans parent to (0 = the root) *)

let key : context Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let capture () = Domain.DLS.get key
let restore ctx = Domain.DLS.set key ctx
let current () = Option.map fst (Domain.DLS.get key)

(* --------------------------- recording ----------------------------- *)

let add t span =
  (* claim a slot before consing so the list never exceeds [capacity];
     overflow is counted, not silent *)
  if Atomic.fetch_and_add t.count 1 >= t.capacity then
    Atomic.incr t.dropped
  else begin
    let rec cons () =
      let cur = Atomic.get t.spans in
      if not (Atomic.compare_and_set t.spans cur (span :: cur)) then cons ()
    in
    cons ()
  end

let note ~name ~start_ns ~dur_ns =
  match Domain.DLS.get key with
  | None -> ()
  | Some (t, parent) ->
    add t
      {
        id = Atomic.fetch_and_add t.next_id 1;
        parent;
        name;
        domain = (Domain.self () :> int);
        start_ns;
        dur_ns;
      }

(* Nested spans allocate their id on entry so children recorded inside
   the body parent to them; [exit] restores whatever context [enter]
   replaced, even when the body raised. *)

type frame = (context * int) option

let enter () =
  match Domain.DLS.get key with
  | None -> None
  | Some (t, _) as saved ->
    let id = Atomic.fetch_and_add t.next_id 1 in
    Domain.DLS.set key (Some (t, id));
    Some (saved, id)

let exit frame ~name ~start_ns ~dur_ns =
  match frame with
  | None -> ()
  | Some (saved, id) ->
    (match saved with
    | Some (t, parent) ->
      add t
        {
          id;
          parent;
          name;
          domain = (Domain.self () :> int);
          start_ns;
          dur_ns;
        }
    | None -> ());
    Domain.DLS.set key saved

let with_request t name f =
  let saved = capture () in
  Domain.DLS.set key (Some (t, 0));
  let start_ns = Clock.now_ns () in
  let frame = enter () in
  Fun.protect
    ~finally:(fun () ->
      exit frame ~name ~start_ns ~dur_ns:(Clock.elapsed_ns start_ns);
      restore saved)
    f

(* --------------------------- rendering ----------------------------- *)

let spans t =
  (* recording conses newest-first; present start-ordered (stable on
     ties, so parents precede children recorded at the same stamp) *)
  List.stable_sort
    (fun a b -> compare (a.start_ns, a.id) (b.start_ns, b.id))
    (List.rev (Atomic.get t.spans))

let to_json t =
  let span_json s =
    Json.Obj
      [
        ("id", Json.Int s.id);
        ("parent", Json.Int s.parent);
        ("name", Json.String s.name);
        ("domain", Json.Int s.domain);
        ("start_ns", Json.Int (s.start_ns - t.minted_ns));
        ("dur_ns", Json.Int s.dur_ns);
      ]
  in
  Json.Obj
    [
      ("schema", Json.String "rtrace/v1");
      ("rid", Json.String t.rid);
      ("spans", Json.List (List.map span_json (spans t)));
      ("dropped", Json.Int (Atomic.get t.dropped));
    ]

let emit_timeline ~pid t sink =
  Trace_event.sink_process_name sink ~pid (Printf.sprintf "req %s" t.rid);
  let seen = Hashtbl.create 4 in
  List.iter
    (fun s ->
      if not (Hashtbl.mem seen s.domain) then begin
        Hashtbl.add seen s.domain ();
        Trace_event.sink_thread_name sink ~pid ~tid:s.domain
          (Printf.sprintf "domain %d" s.domain)
      end;
      sink.Trace_event.event
        (Trace_event.Complete
           {
             name = s.name;
             cat = "request";
             pid;
             tid = s.domain;
             ts = float_of_int (s.start_ns - t.minted_ns) /. 1e3;
             dur = float_of_int s.dur_ns /. 1e3;
             args = [ ("id", Json.Int s.id); ("parent", Json.Int s.parent) ];
           }))
    (spans t)
