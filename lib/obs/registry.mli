(** The process-wide metric registry.

    Instrumentation sites obtain handles by name ([counter], [gauge],
    [histogram]); the first request for a name creates the metric,
    later requests return the same handle, so a metric survives any
    number of {!reset}s and its value is the union of every site that
    bumps it.  Creation takes a mutex; the returned handles are the
    lock-free {!Metric} primitives, so steady-state instrumentation
    never blocks.  Idiomatic use binds handles once at module
    initialization and only bumps them afterwards.

    Naming convention: dot-separated lowercase paths, subsystem first —
    [explore.nodes_expanded], [sim.firings], [lang.parse_ns],
    [sim.latency.<process>].  Durations are in nanoseconds and end in
    [_ns].

    {!snapshot} serializes everything as the [obs/v1] JSON schema (see
    [docs/OBSERVABILITY.md]); {!dump} is the human-readable form. *)

(** {1 Handles} *)

val counter : string -> Metric.counter
val gauge : string -> Metric.gauge
val histogram : string -> Metric.histogram

type entry =
  | Counter of Metric.counter
  | Gauge of Metric.gauge
  | Histogram of Metric.histogram

val bindings : unit -> (string * entry) list
(** Every registered metric, name-sorted — the raw form behind
    {!snapshot}, for readers that need live handles rather than JSON
    ({!Expo} renders the Prometheus exposition from it, {!Series}
    samples it periodically). *)

(** {1 Timing} *)

val with_span : string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f], records a {!Span.span} in the global
    ring, and observes the duration in the histogram called [name]
    (create-on-first-use).  The span is recorded even when [f] raises.
    When a request trace is active on this domain ({!Rtrace}), the span
    also joins that trace as a nested span — children recorded inside
    [f] parent to it. *)

val record_span : name:string -> start_ns:int -> dur_ns:int -> unit
(** Manual span recording for regions that cannot be wrapped in a
    closure.  Also feeds the [name] histogram, and the active request
    trace (as a leaf span) when there is one. *)

val spans : unit -> Span.span list

val set_span_capacity : int -> unit
(** Replace the span ring with a fresh one of the given capacity (no-op
    when the capacity is unchanged).  The swap is not atomic with
    respect to in-flight {!record_span}s, so call it only before the
    instrumented work starts — e.g. from CLI argument handling.
    @raise Invalid_argument when the capacity is [< 1]. *)

val span_capacity : unit -> int
(** Current ring capacity (defaults to 1024). *)

(** {1 Snapshots} *)

val snapshot : unit -> Json.t
(** The [obs/v1] snapshot: schema tag, counters, gauges, histograms
    (count/sum/min/max/p50/p90/p99/buckets) and the retained spans.
    Metric names are emitted sorted, so snapshots are diffable. *)

val to_file : string -> unit
(** Write {!snapshot} to a file, indented, with a trailing newline.
    The write is atomic ({!Atomic_file.write}): a reader never sees a
    torn snapshot, even if the writer dies mid-write. *)

val dump : Format.formatter -> unit
(** Human-readable table of every registered metric. *)

(** {1 Lifecycle} *)

val reset : unit -> unit
(** Zero every registered metric and clear the span ring, keeping all
    registrations (and therefore all previously handed-out handles)
    valid.  Call only while no other domain is writing. *)
