type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ----------------------------- emission ----------------------------- *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let float_literal f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let to_string ?(minify = true) ?(depth = 0) t =
  let b = Buffer.create 256 in
  let pad n = if not minify then Buffer.add_string b (String.make (2 * n) ' ') in
  let nl () = if not minify then Buffer.add_char b '\n' in
  let rec go depth = function
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (if v then "true" else "false")
    | Int n -> Buffer.add_string b (string_of_int n)
    | Float f -> Buffer.add_string b (float_literal f)
    | String s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
    | List [] -> Buffer.add_string b "[]"
    | List items ->
      Buffer.add_char b '[';
      nl ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char b ',';
            nl ()
          end;
          pad (depth + 1);
          go (depth + 1) item)
        items;
      nl ();
      pad depth;
      Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj fields ->
      Buffer.add_char b '{';
      nl ();
      List.iteri
        (fun i (k, v) ->
          if i > 0 then begin
            Buffer.add_char b ',';
            nl ()
          end;
          pad (depth + 1);
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b (if minify then "\":" else "\": ");
          go (depth + 1) v)
        fields;
      nl ();
      pad depth;
      Buffer.add_char b '}'
  in
  go depth t;
  Buffer.contents b

let pp ppf t = Format.pp_print_string ppf (to_string ~minify:false t)

(* ----------------------------- parsing ------------------------------ *)

exception Error of int * string

let parse input =
  let n = String.length input in
  let pos = ref 0 in
  let fail fmt =
    Format.kasprintf (fun m -> raise (Error (!pos, m))) fmt
  in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | Some d -> fail "expected %c, found %c" c d
    | None -> fail "expected %c, found end of input" c
  in
  let literal word value =
    if !pos + String.length word <= n
       && String.sub input !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail "invalid literal"
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | None -> fail "unterminated escape"
        | Some c ->
          advance ();
          (match c with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
            if !pos + 4 > n then fail "truncated \\u escape";
            let hex = String.sub input !pos 4 in
            pos := !pos + 4;
            let code =
              match int_of_string_opt ("0x" ^ hex) with
              | Some c -> c
              | None -> fail "bad \\u escape %s" hex
            in
            (* BMP only; encode as UTF-8 *)
            if code < 0x80 then Buffer.add_char b (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end
          | c -> fail "bad escape \\%c" c);
          go ())
      | Some c ->
        advance ();
        Buffer.add_char b c;
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let s = String.sub input start (!pos - start) in
    let floating =
      String.exists (function '.' | 'e' | 'E' -> true | _ -> false) s
    in
    if floating then
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> fail "bad number %s" s
    else
      match int_of_string_opt s with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt s with
        | Some f -> Float f
        | None -> fail "bad number %s" s)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          fields := (key, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ()
          | Some '}' -> advance ()
          | _ -> fail "expected , or } in object"
        in
        members ();
        Obj (List.rev !fields)
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements ()
          | Some ']' -> advance ()
          | _ -> fail "expected , or ] in array"
        in
        elements ();
        List (List.rev !items)
      end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail "unexpected character %c" c
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Error (at, msg) ->
    Result.Error (Printf.sprintf "JSON error at byte %d: %s" at msg)

(* ----------------------------- accessors ---------------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function
  | Int n -> Some n
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_float = function
  | Float f -> Some f
  | Int n -> Some (float_of_int n)
  | _ -> None

let to_list = function List l -> Some l | _ -> None
let to_string_opt = function String s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
