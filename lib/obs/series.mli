(** Rolling time-series over the registry.

    A {!t} is a bounded ring of periodic registry samples (cumulative
    counter values, gauge levels, histogram bucket counts).  The serve
    daemon's ticker calls {!sample} once per interval; {!to_json}
    renders the retained windows as the [series/v1] document — per-
    counter rates ([last_per_s] over the most recent window,
    [mean_per_s] over the whole retained span) and per-histogram
    rolling quantiles computed from the bucket-count {e deltas} between
    the oldest and newest samples, i.e. p50/p99 of the last N windows
    rather than since process start.

    Sampling walks {!Registry.bindings} under the series mutex — a few
    microseconds per tick, never on a request hot path.  With the
    ticker disabled the subsystem costs nothing.

    {!diff_snapshots} applies the same delta arithmetic to two
    [obs/v1] snapshot files, backing [spi-variants metrics-diff]. *)

type t

val default_windows : int
(** 32 — with the default 1 s tick, about half a minute of history. *)

val create : ?windows:int -> unit -> t
(** @raise Invalid_argument when [windows < 2] (one window is not
    enough to difference). *)

val sample : t -> unit
(** Append one registry sample, evicting the oldest once [windows]
    are retained.  Thread-safe. *)

val windows : t -> int
(** Samples currently retained. *)

val taken : t -> int
(** Samples taken since creation (monotonic, not capped). *)

val to_json : t -> Json.t
(** The [series/v1] document.  Counters with value 0 and histograms
    with an empty window are omitted; quantile fields are [Null] when
    the window has no observations. *)

(** {1 Delta arithmetic}

    Shared with {!diff_snapshots} and exposed for tests. *)

val delta_buckets :
  newer:(int * int) list -> older:(int * int) list -> (int * int) list
(** Per-bucket count difference of two ascending [(lower_bound, count)]
    lists, clamped at zero and with empty buckets dropped. *)

val quantile_of_buckets : (int * int) list -> float -> int option
(** Upper bound of the bucket holding the rank-[ceil(q * total)]
    observation; [None] on an empty list.
    @raise Invalid_argument when [q] is outside [0, 1]. *)

val diff_snapshots : Json.t -> Json.t -> (Json.t, string) result
(** [diff_snapshots a b] compares two [obs/v1] snapshots and returns an
    [obs-diff/v1] document: counter and gauge deltas (unchanged values
    omitted) and, per histogram, [count_delta]/[sum_delta] plus the
    quantiles of the B-minus-A bucket delta — the latency distribution
    of what happened {e between} the snapshots.  [Error] when either
    document is not an [obs/v1] snapshot. *)
