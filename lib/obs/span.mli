(** Lightweight spans in a bounded ring buffer.

    A span is one timed region (a parse, a search task, a simulation
    run) with the domain that executed it.  Spans land in a fixed-size
    ring: recording is one atomic fetch-and-add plus one array store,
    old spans are overwritten, and memory is bounded no matter how long
    the process runs.

    Concurrency: slots are claimed through an atomic cursor, so two
    domains never target the same slot within one lap of the ring.  A
    writer lapped by [capacity] concurrent recordings can overwrite a
    slot another reader is copying — the reader then sees a complete
    (older or newer) span, never a torn one, because slots hold
    immutable records. *)

type span = {
  name : string;
  domain : int;  (** [Domain.self] of the recording domain *)
  start_ns : int;  (** {!Clock.now_ns} at entry *)
  dur_ns : int;
}

type ring

val create : capacity:int -> ring
(** @raise Invalid_argument when [capacity < 1]. *)

val capacity : ring -> int

val record : ring -> span -> unit

val recorded : ring -> int
(** Total spans ever recorded (may exceed [capacity]). *)

val dropped : ring -> int
(** Spans no longer retained because the ring wrapped:
    [max 0 (recorded - capacity)].  Snapshots report this instead of
    overwriting silently. *)

val contents : ring -> span list
(** The retained spans, oldest first. *)

val clear : ring -> unit
