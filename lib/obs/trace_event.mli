(** Structured timeline events and a Chrome trace-event exporter.

    Where {!Metric} answers "how many / how long in aggregate", this
    module answers {e when}: it models a timeline as the Chrome
    trace-event JSON format (the [trace/v1] schema of this repository),
    which both [chrome://tracing] and Perfetto load directly.

    Lane conventions: a [pid] is one execution (a simulation run, an
    explorer invocation), a [tid] is one lane inside it (an SPI process,
    a worker domain).  Name lanes with {!set_process_name} /
    {!set_thread_name}; viewers render those instead of the raw ids.

    Timestamps are microseconds as floats.  Converters choose the unit
    mapping: the simulator maps one model time unit to 1 us, the
    explorer maps wall-clock nanoseconds to fractional us. *)

type args = (string * Json.t) list
(** Free-form per-event payload, rendered by viewers in the detail
    pane. *)

type event =
  | Complete of {
      name : string;
      cat : string;
      pid : int;
      tid : int;
      ts : float;  (** start, us *)
      dur : float;  (** duration, us; clamped to 0 when negative *)
      args : args;
    }  (** a span with both endpoints known ([ph = "X"]) *)
  | Begin of {
      name : string;
      cat : string;
      pid : int;
      tid : int;
      ts : float;
      args : args;
    }  (** open a nested span ([ph = "B"]); close with {!End} *)
  | End of { pid : int; tid : int; ts : float }  (** [ph = "E"] *)
  | Instant of {
      name : string;
      cat : string;
      pid : int;
      tid : int;
      ts : float;
      args : args;
    }  (** a point event on a lane ([ph = "i"], thread scope) *)
  | Counter of {
      name : string;
      pid : int;
      ts : float;
      values : (string * float) list;  (** series name -> sample *)
    }  (** a sampled value track ([ph = "C"]) *)
  | Flow_start of {
      name : string;
      id : int;
      pid : int;
      tid : int;
      ts : float;
    }  (** tail of a flow arrow ([ph = "s"]); binds to the enclosing
          span *)
  | Flow_end of { name : string; id : int; pid : int; tid : int; ts : float }
      (** head of a flow arrow ([ph = "f"], binding-point enclosing) *)

type metadata =
  | Process_name of { pid : int; name : string }
  | Thread_name of { pid : int; tid : int; name : string }
  | Thread_order of { pid : int; tid : int; index : int }
      (** Lane naming/ordering records ([ph = "M"]).  Kept separate from
          the event stream so they can head their segment regardless of
          when the converter learned a lane's name. *)

type t
(** A mutable event collection under construction. *)

val create : unit -> t

val add : t -> event -> unit

val set_process_name : t -> pid:int -> string -> unit
(** Label a [pid] group ([ph = "M"], [process_name]). *)

val set_thread_name : t -> pid:int -> tid:int -> string -> unit
(** Label a lane ([ph = "M"], [thread_name]). *)

val set_thread_order : t -> pid:int -> tid:int -> int -> unit
(** Pin a lane's display position ([thread_sort_index]). *)

val length : t -> int
(** Events added so far (metadata records not counted). *)

val events : t -> event list
(** Insertion order. *)

val metadata : t -> metadata list
(** Insertion order. *)

(** {1 Sinks}

    Converters ({!Sim.Timeline}, the explorer's domain timeline) write
    through a {!sink} so the same conversion can fill a buffered
    collection or stream straight to disk ({!Trace_stream}). *)

type sink = { event : event -> unit; meta : metadata -> unit }

val buffer_sink : t -> sink
(** A sink that appends to the collection — the buffered path. *)

val sink_process_name : sink -> pid:int -> string -> unit
val sink_thread_name : sink -> pid:int -> tid:int -> string -> unit
val sink_thread_order : sink -> pid:int -> tid:int -> int -> unit

val schema : string
(** ["trace/v1"]. *)

val to_json : t -> Json.t
(** The [trace/v1] document: [{"schema": "trace/v1", "traceEvents":
    [...]}].  Canonical ordering: one contiguous segment per [pid]
    (first-appearance order, metadata before events); within a segment
    the metadata records in insertion order, then the events
    stable-sorted by timestamp.  This keeps the file diffable,
    viewer-friendly, and byte-identical to what {!Trace_stream} writes
    incrementally when runs flush at segment boundaries. *)

val to_file : string -> t -> unit
(** Write {!to_json}, indented, with a trailing newline.  The write is
    atomic ({!Atomic_file.write}): a reader never sees a torn trace. *)

(** {1 Exporter internals}

    Shared with {!Trace_stream} so the incremental writer renders the
    very same JSON values the buffered exporter would. *)

val event_json : event -> Json.t
val metadata_json : metadata -> Json.t
val pid_of : event -> int
val ts_of : event -> float
val metadata_pid : metadata -> int

val segment_json : metadata:metadata list -> events:event list -> Json.t list
(** One pid's segment: metadata (insertion order) then events
    (stable-sorted by timestamp), as the items to splice into
    [traceEvents]. *)
