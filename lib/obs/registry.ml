(* One global registry.  Creation is rare and mutex-protected; the
   handles handed out are lock-free, so the hot path never touches the
   lock.  Hashtbl reads also take the lock: OCaml 5 Hashtbl is not
   safe against concurrent resize, and handle lookup is not a hot
   operation (sites bind handles once at module init). *)

type entry =
  | Counter of Metric.counter
  | Gauge of Metric.gauge
  | Histogram of Metric.histogram

let lock = Mutex.create ()
let table : (string, entry) Hashtbl.t = Hashtbl.create 64

let default_span_capacity = 1024

(* The ring is swappable so the capacity is an argument of the process
   (CLI [--span-capacity], test setup), not a compile-time constant.
   Swapping is not atomic with respect to in-flight [record_span]s, so
   resize only before the instrumented work starts. *)
let ring = ref (Span.create ~capacity:default_span_capacity)

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let set_span_capacity capacity =
  if capacity <= 0 then
    invalid_arg
      (Printf.sprintf "Obs.Registry.set_span_capacity: capacity %d (want > 0)"
         capacity);
  (* same-capacity calls must not swap the ring: that would silently
     discard every span recorded so far *)
  if capacity <> Span.capacity !ring then ring := Span.create ~capacity

let span_capacity () = Span.capacity !ring

let counter name =
  locked (fun () ->
      match Hashtbl.find_opt table name with
      | Some (Counter c) -> c
      | Some _ ->
        invalid_arg
          (Printf.sprintf "Obs.Registry: %s already registered with another type" name)
      | None ->
        let c = Metric.make_counter name in
        Hashtbl.add table name (Counter c);
        c)

let gauge name =
  locked (fun () ->
      match Hashtbl.find_opt table name with
      | Some (Gauge g) -> g
      | Some _ ->
        invalid_arg
          (Printf.sprintf "Obs.Registry: %s already registered with another type" name)
      | None ->
        let g = Metric.make_gauge name in
        Hashtbl.add table name (Gauge g);
        g)

let histogram name =
  locked (fun () ->
      match Hashtbl.find_opt table name with
      | Some (Histogram h) -> h
      | Some _ ->
        invalid_arg
          (Printf.sprintf "Obs.Registry: %s already registered with another type" name)
      | None ->
        let h = Metric.make_histogram name in
        Hashtbl.add table name (Histogram h);
        h)

(* Every span also lands in the request trace active on this domain
   (if any): [Rtrace.note] for flat records, [Rtrace.enter]/[exit]
   around [with_span] bodies so nested spans keep their parent links.
   With no active trace both are one domain-local read. *)

let record_base ~name ~start_ns ~dur_ns =
  Span.record !ring
    { Span.name; domain = (Domain.self () :> int); start_ns; dur_ns };
  Metric.observe (histogram name) dur_ns

let record_span ~name ~start_ns ~dur_ns =
  record_base ~name ~start_ns ~dur_ns;
  Rtrace.note ~name ~start_ns ~dur_ns

let with_span name f =
  let start_ns = Clock.now_ns () in
  let frame = Rtrace.enter () in
  Fun.protect
    ~finally:(fun () ->
      let dur_ns = Clock.elapsed_ns start_ns in
      record_base ~name ~start_ns ~dur_ns;
      Rtrace.exit frame ~name ~start_ns ~dur_ns)
    f

let spans () = Span.contents !ring

(* ----------------------------- snapshots ---------------------------- *)

let sorted_entries () =
  let items = locked (fun () -> Hashtbl.fold (fun k v acc -> (k, v) :: acc) table []) in
  List.sort (fun (a, _) (b, _) -> String.compare a b) items

let bindings = sorted_entries

let histogram_json h =
  let q p = match Metric.quantile h p with Some v -> Json.Int v | None -> Json.Null in
  let opt = function Some v -> Json.Int v | None -> Json.Null in
  Json.Obj
    [
      ("count", Json.Int (Metric.count h));
      ("sum", Json.Int (Metric.sum h));
      ("min", opt (Metric.h_min h));
      ("max", opt (Metric.h_max h));
      ("p50", q 0.5);
      ("p90", q 0.9);
      ("p99", q 0.99);
      ( "buckets",
        Json.List
          (List.map
             (fun (lo, c) -> Json.List [ Json.Int lo; Json.Int c ])
             (Metric.buckets h)) );
    ]

let snapshot () =
  let entries = sorted_entries () in
  let counters =
    List.filter_map
      (function
        | name, Counter c -> Some (name, Json.Int (Metric.value c))
        | _ -> None)
      entries
  and gauges =
    List.filter_map
      (function
        | name, Gauge g -> Some (name, Json.Int (Metric.gauge_value g))
        | _ -> None)
      entries
  and histograms =
    List.filter_map
      (function
        | name, Histogram h -> Some (name, histogram_json h)
        | _ -> None)
      entries
  in
  let span_json (s : Span.span) =
    Json.Obj
      [
        ("name", Json.String s.Span.name);
        ("domain", Json.Int s.Span.domain);
        ("start_ns", Json.Int s.Span.start_ns);
        ("dur_ns", Json.Int s.Span.dur_ns);
      ]
  in
  Json.Obj
    [
      ("schema", Json.String "obs/v1");
      ("counters", Json.Obj counters);
      ("gauges", Json.Obj gauges);
      ("histograms", Json.Obj histograms);
      ("spans", Json.List (List.map span_json (spans ())));
      ("span_capacity", Json.Int (Span.capacity !ring));
      ("spans_dropped", Json.Int (Span.dropped !ring));
    ]

let to_file path =
  Atomic_file.write path (Json.to_string ~minify:false (snapshot ()) ^ "\n")

let dump ppf =
  let entries = sorted_entries () in
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (name, entry) ->
      match entry with
      | Counter c -> Format.fprintf ppf "%-40s %d@," name (Metric.value c)
      | Gauge g -> Format.fprintf ppf "%-40s %d (gauge)@," name (Metric.gauge_value g)
      | Histogram h ->
        let q p = match Metric.quantile h p with Some v -> string_of_int v | None -> "-" in
        Format.fprintf ppf "%-40s n=%d sum=%d p50=%s p90=%s p99=%s@," name
          (Metric.count h) (Metric.sum h) (q 0.5) (q 0.9) (q 0.99))
    entries;
  Format.fprintf ppf "spans retained: %d (capacity %d, dropped %d)@]@."
    (List.length (spans ())) (Span.capacity !ring) (Span.dropped !ring)

let reset () =
  locked (fun () ->
      Hashtbl.iter
        (fun _ -> function
          | Counter c -> Metric.reset_counter c
          | Gauge g -> Metric.reset_gauge g
          | Histogram h -> Metric.reset_histogram h)
        table);
  Span.clear !ring
