(** Lock-free metric primitives.

    Every mutation is a single [Atomic] operation (or a short CAS loop
    for min/max), so metrics are safe to bump concurrently from
    {!Synth.Par} worker domains and from the simulator without
    coordination.  Reads ([value], [snapshot_*]) are wait-free and may
    observe a mid-update histogram (count ahead of sum by one
    observation); exact consistency is only guaranteed once the domains
    that write have quiesced — which is when snapshots are taken.

    Instrumented hot loops should accumulate into plain locals and fold
    into these metrics once per task or per run: a counter [add] at the
    end of a search task costs one atomic op for millions of nodes. *)

(** {1 Counters} *)

type counter
(** Monotonically increasing integer. *)

val make_counter : string -> counter
val counter_name : counter -> string
val incr : counter -> unit
val add : counter -> int -> unit
(** Negative deltas are rejected with [Invalid_argument]. *)

val value : counter -> int

(** {1 Gauges} *)

type gauge
(** Last-write-wins integer (a level, a timestamp, a size). *)

val make_gauge : string -> gauge
val gauge_name : gauge -> string
val set : gauge -> int -> unit
val gauge_value : gauge -> int

(** {1 Histograms} *)

type histogram
(** Power-of-two bucketed distribution of non-negative integers
    (latencies in ns, queue depths, node counts).  Bucket [0] holds the
    value 0; bucket [b >= 1] holds values in [[2^(b-1), 2^b - 1]].
    Quantile estimates therefore carry at most a 2x relative error,
    which is what a regression gate needs — not a profiler. *)

val make_histogram : string -> histogram
val histogram_name : histogram -> string

val observe : histogram -> int -> unit
(** Negative values are clamped to 0. *)

val count : histogram -> int
val sum : histogram -> int

val h_min : histogram -> int option
(** Smallest observed value; [None] while empty. *)

val h_max : histogram -> int option

val quantile : histogram -> float -> int option
(** [quantile h q] for [q] in [[0, 1]]: an upper bound of the bucket
    containing the rank-[ceil(q * count)] observation.  [None] while
    empty. *)

val buckets : histogram -> (int * int) list
(** Non-empty buckets as [(lower_bound, count)], ascending. *)

(** {1 Reset} *)

val reset_counter : counter -> unit
val reset_gauge : gauge -> unit
val reset_histogram : histogram -> unit
(** Zero the metric in place; registered handles stay valid.  Not
    atomic with respect to concurrent writers — reset only quiesced
    registries (tests, the bench harness between records). *)
