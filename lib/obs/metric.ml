(* All mutation goes through Atomic so the same metric can be bumped
   from several domains; see the .mli for the consistency contract. *)

type counter = { c_name : string; c_cell : int Atomic.t }

let make_counter name = { c_name = name; c_cell = Atomic.make 0 }
let counter_name c = c.c_name
let incr c = ignore (Atomic.fetch_and_add c.c_cell 1)

let add c n =
  if n < 0 then invalid_arg "Metric.add: negative delta"
  else if n > 0 then ignore (Atomic.fetch_and_add c.c_cell n)

let value c = Atomic.get c.c_cell
let reset_counter c = Atomic.set c.c_cell 0

type gauge = { g_name : string; g_cell : int Atomic.t }

let make_gauge name = { g_name = name; g_cell = Atomic.make 0 }
let gauge_name g = g.g_name
let set g v = Atomic.set g.g_cell v
let gauge_value g = Atomic.get g.g_cell
let reset_gauge g = Atomic.set g.g_cell 0

(* Power-of-two buckets: index 0 holds the value 0, index b >= 1 holds
   [2^(b-1), 2^b - 1].  63 buckets cover the whole non-negative int
   range. *)
let n_buckets = 63

let bucket_of v =
  if v <= 0 then 0
  else begin
    let rec go i v = if v = 0 then i else go (i + 1) (v lsr 1) in
    go 0 v
  end

let bucket_lower b = if b = 0 then 0 else 1 lsl (b - 1)
let bucket_upper b = if b = 0 then 0 else (1 lsl b) - 1

type histogram = {
  h_name : string;
  h_buckets : int Atomic.t array;
  h_count : int Atomic.t;
  h_sum : int Atomic.t;
  h_lo : int Atomic.t;  (* max_int while empty *)
  h_hi : int Atomic.t;  (* min_int while empty *)
}

let make_histogram name =
  {
    h_name = name;
    h_buckets = Array.init n_buckets (fun _ -> Atomic.make 0);
    h_count = Atomic.make 0;
    h_sum = Atomic.make 0;
    h_lo = Atomic.make max_int;
    h_hi = Atomic.make min_int;
  }

let histogram_name h = h.h_name

let rec cas_min cell v =
  let cur = Atomic.get cell in
  if v < cur && not (Atomic.compare_and_set cell cur v) then cas_min cell v

let rec cas_max cell v =
  let cur = Atomic.get cell in
  if v > cur && not (Atomic.compare_and_set cell cur v) then cas_max cell v

let observe h v =
  let v = max 0 v in
  ignore (Atomic.fetch_and_add h.h_buckets.(bucket_of v) 1);
  ignore (Atomic.fetch_and_add h.h_count 1);
  ignore (Atomic.fetch_and_add h.h_sum v);
  cas_min h.h_lo v;
  cas_max h.h_hi v

let count h = Atomic.get h.h_count
let sum h = Atomic.get h.h_sum
let h_min h = if count h = 0 then None else Some (Atomic.get h.h_lo)
let h_max h = if count h = 0 then None else Some (Atomic.get h.h_hi)

let quantile h q =
  if q < 0. || q > 1. then invalid_arg "Metric.quantile: q outside [0, 1]";
  let total = count h in
  if total = 0 then None
  else begin
    let rank = max 1 (int_of_float (ceil (q *. float_of_int total))) in
    let rec walk b acc =
      if b >= n_buckets then Some (Atomic.get h.h_hi)
      else
        let acc = acc + Atomic.get h.h_buckets.(b) in
        if acc >= rank then
          (* clamp the bucket bound by the observed extrema so tiny
             histograms report exact values *)
          Some (max (Atomic.get h.h_lo) (min (bucket_upper b) (Atomic.get h.h_hi)))
        else walk (b + 1) acc
    in
    walk 0 0
  end

let buckets h =
  let out = ref [] in
  for b = n_buckets - 1 downto 0 do
    let c = Atomic.get h.h_buckets.(b) in
    if c > 0 then out := (bucket_lower b, c) :: !out
  done;
  !out

let reset_histogram h =
  Array.iter (fun b -> Atomic.set b 0) h.h_buckets;
  Atomic.set h.h_count 0;
  Atomic.set h.h_sum 0;
  Atomic.set h.h_lo max_int;
  Atomic.set h.h_hi min_int
