(* Rolling time-series over the registry: a bounded ring of periodic
   samples (cumulative counter values, gauge levels, histogram bucket
   counts), from which rates (req/s, shed/s) and windowed quantiles
   (p50/p99 over the retained span, not since process start) are
   derived by *differencing* — the same delta code the [metrics-diff]
   CLI applies to two obs/v1 snapshot files.

   Sampling walks [Registry.bindings] — a mutex acquisition and one
   atomic read per metric, a few microseconds once per tick — so the
   ticker never touches a hot path; with the ticker disabled the
   subsystem costs nothing at all. *)

type hist_point = { hp_count : int; hp_sum : int; hp_buckets : (int * int) list }

type point = {
  at_ns : int;
  p_counters : (string * int) list;  (* name-sorted, registry order *)
  p_gauges : (string * int) list;
  p_hists : (string * hist_point) list;
}

type t = {
  capacity : int;
  lock : Mutex.t;
  mutable points : point list;  (* newest first, length <= capacity *)
  mutable taken : int;
}

let default_windows = 32

let create ?(windows = default_windows) () =
  if windows < 2 then invalid_arg "Series.create: windows < 2";
  { capacity = windows; lock = Mutex.create (); points = []; taken = 0 }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let take_point () =
  let counters = ref [] and gauges = ref [] and hists = ref [] in
  List.iter
    (fun (name, entry) ->
      match entry with
      | Registry.Counter c -> counters := (name, Metric.value c) :: !counters
      | Registry.Gauge g -> gauges := (name, Metric.gauge_value g) :: !gauges
      | Registry.Histogram h ->
        hists :=
          ( name,
            {
              hp_count = Metric.count h;
              hp_sum = Metric.sum h;
              hp_buckets = Metric.buckets h;
            } )
          :: !hists)
    (Registry.bindings ());
  {
    at_ns = Clock.now_ns ();
    p_counters = List.rev !counters;
    p_gauges = List.rev !gauges;
    p_hists = List.rev !hists;
  }

let sample t =
  let p = take_point () in
  locked t (fun () ->
      let kept =
        if List.length t.points >= t.capacity then
          List.filteri (fun i _ -> i < t.capacity - 1) t.points
        else t.points
      in
      t.points <- p :: kept;
      t.taken <- t.taken + 1)

let windows t = locked t (fun () -> List.length t.points)
let taken t = t.taken

(* ---------------------------- deltas ------------------------------- *)

(* Bucket lists are ascending [(lower_bound, count)]; a delta is the
   per-bucket count difference, clamped at zero (a reset between
   samples must not produce negative buckets) and with empty buckets
   dropped. *)
let delta_buckets ~newer ~older =
  let rec go n o acc =
    match (n, o) with
    | [], _ -> List.rev acc
    | (lo, c) :: n', [] -> go n' [] (if c > 0 then (lo, c) :: acc else acc)
    | (nlo, nc) :: n', (olo, oc) :: o' ->
      if nlo < olo then go n' o (if nc > 0 then (nlo, nc) :: acc else acc)
      else if nlo > olo then go n o' acc
      else
        let d = nc - oc in
        go n' o' (if d > 0 then (nlo, d) :: acc else acc)
  in
  go newer older []

let bucket_upper lo = if lo = 0 then 0 else (2 * lo) - 1

(* Quantile over an [(lower, count)] bucket list: the upper bound of
   the bucket holding the rank-[ceil(q * total)] observation — the
   same 2x-bounded estimate [Metric.quantile] gives for a live
   histogram. *)
let quantile_of_buckets buckets q =
  if q < 0. || q > 1. then invalid_arg "Series.quantile_of_buckets";
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 buckets in
  if total = 0 then None
  else begin
    let rank = max 1 (int_of_float (ceil (q *. float_of_int total))) in
    let rec walk bs acc =
      match bs with
      | [] -> None
      | (lo, c) :: rest ->
        let acc = acc + c in
        if acc >= rank then Some (bucket_upper lo) else walk rest acc
    in
    walk buckets 0
  end

let rate_per_s dv dt_ns =
  if dt_ns <= 0 || dv <= 0 then 0.
  else float_of_int dv *. 1e9 /. float_of_int dt_ns

(* --------------------------- rendering ----------------------------- *)

let assoc0 name l = Option.value ~default:0 (List.assoc_opt name l)

let to_json t =
  let points = locked t (fun () -> t.points) in
  match points with
  | [] ->
    Json.Obj
      [
        ("schema", Json.String "series/v1");
        ("windows", Json.Int 0);
        ("span_ns", Json.Int 0);
        ("counters", Json.Obj []);
        ("gauges", Json.Obj []);
        ("histograms", Json.Obj []);
      ]
  | newest :: _ ->
    let oldest = List.nth points (List.length points - 1) in
    let prev = match points with _ :: p :: _ -> p | _ -> newest in
    let span_ns = newest.at_ns - oldest.at_ns in
    let last_ns = newest.at_ns - prev.at_ns in
    let counters =
      List.filter_map
        (fun (name, v) ->
          if v = 0 then None
          else
            Some
              ( name,
                Json.Obj
                  [
                    ("value", Json.Int v);
                    ( "last_per_s",
                      Json.Float
                        (rate_per_s (v - assoc0 name prev.p_counters) last_ns)
                    );
                    ( "mean_per_s",
                      Json.Float
                        (rate_per_s (v - assoc0 name oldest.p_counters) span_ns)
                    );
                  ] ))
        newest.p_counters
    in
    let gauges =
      List.map (fun (name, v) -> (name, Json.Int v)) newest.p_gauges
    in
    let hists =
      List.filter_map
        (fun (name, hp) ->
          let old =
            Option.value
              ~default:{ hp_count = 0; hp_sum = 0; hp_buckets = [] }
              (List.assoc_opt name oldest.p_hists)
          in
          let window = delta_buckets ~newer:hp.hp_buckets ~older:old.hp_buckets in
          let n = hp.hp_count - old.hp_count in
          if n <= 0 then None
          else
            let q p =
              match quantile_of_buckets window p with
              | Some v -> Json.Int v
              | None -> Json.Null
            in
            Some
              ( name,
                Json.Obj
                  [
                    ("window_count", Json.Int n);
                    ("window_sum", Json.Int (hp.hp_sum - old.hp_sum));
                    ("p50", q 0.5);
                    ("p90", q 0.9);
                    ("p99", q 0.99);
                  ] ))
        newest.p_hists
    in
    Json.Obj
      [
        ("schema", Json.String "series/v1");
        ("windows", Json.Int (List.length points));
        ("span_ns", Json.Int span_ns);
        ("counters", Json.Obj counters);
        ("gauges", Json.Obj gauges);
        ("histograms", Json.Obj hists);
      ]

(* ------------------------ snapshot diffing ------------------------- *)

(* [metrics-diff A.json B.json]: the same differencing applied to two
   obs/v1 snapshot files — counter/gauge deltas plus, for histograms,
   the quantiles of the B-minus-A bucket delta (what happened *between*
   the snapshots, not since process start). *)

let obj_fields name json =
  match Json.member name json with
  | Some (Json.Obj fields) -> Ok fields
  | Some _ -> Error (Printf.sprintf "%S is not an object" name)
  | None -> Error (Printf.sprintf "missing %S section" name)

let int_fields fields =
  List.filter_map
    (fun (k, v) -> Option.map (fun i -> (k, i)) (Json.to_int v))
    fields

let hist_of_json json =
  let get k = Option.bind (Json.member k json) Json.to_int in
  let buckets =
    match Json.member "buckets" json with
    | Some (Json.List items) ->
      List.filter_map
        (function
          | Json.List [ lo; c ] -> (
            match (Json.to_int lo, Json.to_int c) with
            | Some lo, Some c -> Some (lo, c)
            | _ -> None)
          | _ -> None)
        items
    | _ -> []
  in
  {
    hp_count = Option.value ~default:0 (get "count");
    hp_sum = Option.value ~default:0 (get "sum");
    hp_buckets = buckets;
  }

let union_keys a b =
  List.sort_uniq String.compare (List.map fst a @ List.map fst b)

let ( let* ) = Result.bind

let diff_snapshots a b =
  let check doc =
    match Option.bind (Json.member "schema" doc) Json.to_string_opt with
    | Some "obs/v1" -> Ok ()
    | Some other -> Error (Printf.sprintf "schema %S, expected obs/v1" other)
    | None -> Error "missing schema tag"
  in
  let* () = check a in
  let* () = check b in
  let scalar_diff section =
    let* fa = obj_fields section a in
    let* fb = obj_fields section b in
    let va = int_fields fa and vb = int_fields fb in
    Ok
      (List.filter_map
         (fun name ->
           let x = assoc0 name va and y = assoc0 name vb in
           if x = y then None
           else
             Some
               ( name,
                 Json.Obj
                   [
                     ("a", Json.Int x);
                     ("b", Json.Int y);
                     ("delta", Json.Int (y - x));
                   ] ))
         (union_keys va vb))
  in
  let* counters = scalar_diff "counters" in
  let* gauges = scalar_diff "gauges" in
  let* ha = obj_fields "histograms" a in
  let* hb = obj_fields "histograms" b in
  let histograms =
    List.filter_map
      (fun name ->
        let empty = { hp_count = 0; hp_sum = 0; hp_buckets = [] } in
        let get fields =
          match List.assoc_opt name fields with
          | Some j -> hist_of_json j
          | None -> empty
        in
        let x = get ha and y = get hb in
        if x.hp_count = y.hp_count && x.hp_sum = y.hp_sum then None
        else
          let window = delta_buckets ~newer:y.hp_buckets ~older:x.hp_buckets in
          let q p =
            match quantile_of_buckets window p with
            | Some v -> Json.Int v
            | None -> Json.Null
          in
          Some
            ( name,
              Json.Obj
                [
                  ("count_delta", Json.Int (y.hp_count - x.hp_count));
                  ("sum_delta", Json.Int (y.hp_sum - x.hp_sum));
                  ("window_p50", q 0.5);
                  ("window_p90", q 0.9);
                  ("window_p99", q 0.99);
                ] ))
      (union_keys ha hb)
  in
  Ok
    (Json.Obj
       [
         ("schema", Json.String "obs-diff/v1");
         ("counters", Json.Obj counters);
         ("gauges", Json.Obj gauges);
         ("histograms", Json.Obj histograms);
       ])
