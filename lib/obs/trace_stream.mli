(** Incremental [trace/v1] export.

    {!Trace_event.to_file} holds every event of every run in memory and
    serializes once at the end — fine for a single simulation, wasteful
    for a long fault campaign where each seed's timeline is independent.
    A [Trace_stream] writes the same file {e incrementally}: converters
    emit through {!sink} exactly as they would into a buffered
    collection, and {!flush} — called at segment boundaries, e.g. after
    each seed's run has been converted — appends the finished segments
    to disk and drops them, so memory holds at most the segments
    currently being built, not the whole campaign.

    Byte equality: provided every record of a [pid] is emitted before a
    [flush] that follows it (the natural shape of a loop converting one
    run, then flushing), the finished file is byte-identical to
    {!Trace_event.to_file} over the same records — same canonical
    per-pid segment ordering, same indentation, same trailing newline.
    [test/validate_trace.ml --identical] enforces this.

    Crash safety: output accumulates in a temporary file next to [path]
    and is renamed over it only by {!close}, so readers never see a
    torn or headless trace (same contract as {!Atomic_file}). *)

type t

val create : string -> t
(** Open a stream that will become [path] on {!close}.  The temporary
    file lives next to [path].
    @raise Sys_error when the directory is not writable. *)

val sink : t -> Trace_event.sink
(** Feed this to converters ({!Sim.Timeline.emit},
    [Synth.Domain_trace.emit_timeline]).  Records buffer per [pid] until
    {!flush}.
    @raise Invalid_argument after {!close}. *)

val flush : t -> unit
(** Append every buffered segment (pids in first-appearance order,
    metadata before timestamp-sorted events) and release the memory.
    Emitting more records for an already-flushed [pid] afterwards is
    permitted — the file stays valid JSON — but forfeits byte equality
    with the buffered exporter, which keeps each pid contiguous. *)

val close : t -> int
(** {!flush}, terminate the document, and atomically rename into place.
    Returns the number of events written (metadata records excluded).
    The stream must not be used afterwards. *)

val abort : t -> unit
(** Discard the stream and its temporary file; [path] is untouched.
    No-op when already closed or aborted. *)
