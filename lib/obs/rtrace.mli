(** Request-scoped tracing: a per-request span tree.

    A trace is minted when a request is admitted ([Serve.Handler]) and
    made *ambient* on the handling domain; every
    {!Registry.record_span} / {!Registry.with_span} on a domain with an
    active trace also lands in that trace, parented to the innermost
    open span.  [Synth.Par] captures the spawning domain's context and
    restores it on each worker, so spans recorded inside pool tasks
    (explorer tasks, batch items, simulation runs) join the same tree.

    Recording is lock-free (a CAS cons into a bounded list) and happens
    once per task or run — never per node; with no active trace the
    layer costs one domain-local read per recorded span. *)

type t

type span = {
  id : int;
  parent : int;  (** 0 for the root span *)
  name : string;
  domain : int;
  start_ns : int;  (** absolute monotonic stamp; JSON is trace-relative *)
  dur_ns : int;
}

val create : ?capacity:int -> string -> t
(** [create rid] mints a trace for request [rid].  At most [capacity]
    (default 512) spans are retained; overflow is counted in
    {!dropped}, never silent.
    @raise Invalid_argument when [capacity < 1]. *)

val rid : t -> string
val dropped : t -> int

(** {1 Ambient context}

    The current (trace, parent span id) pair is domain-local.  [capture]
    / [restore] move it across domains — {!Synth.Par} calls them around
    worker bodies so pool tasks inherit the spawning request's trace. *)

type context

val capture : unit -> context
val restore : context -> unit

val current : unit -> t option
(** The trace active on this domain, if any. *)

val with_request : t -> string -> (unit -> 'a) -> 'a
(** [with_request t name f] activates [t] on this domain, runs [f]
    under a root-parented span called [name] (recorded even if [f]
    raises), then restores the previous context. *)

(** {1 Recording}

    These are the hooks {!Registry} drives; instrumentation sites
    should keep calling [Registry.with_span] / [Registry.record_span]
    and get request scoping for free. *)

val note : name:string -> start_ns:int -> dur_ns:int -> unit
(** Record a leaf span under the innermost open span of the active
    trace; no-op without one. *)

type frame

val enter : unit -> frame
(** Open a nested span: allocates its id so spans recorded inside the
    body parent to it.  Pair with {!exit} (use [Fun.protect]). *)

val exit : frame -> name:string -> start_ns:int -> dur_ns:int -> unit
(** Close a span opened by {!enter}, record it, and restore the
    enclosing parent. *)

(** {1 Rendering} *)

val spans : t -> span list
(** Retained spans, ordered by start stamp. *)

val to_json : t -> Json.t
(** The [rtrace/v1] document: rid, spans (ids, parent links,
    trace-relative [start_ns], durations, recording domain), dropped
    count. *)

val emit_timeline : pid:int -> t -> Trace_event.sink -> unit
(** Render the trace as one [trace/v1] process group: [pid] named after
    the rid, one lane per recording domain, one [Complete] event per
    span carrying its id/parent in the args. *)
