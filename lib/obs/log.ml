(* Leveled, structured JSON logs ([log/v1]): one minified object per
   line, machine-parseable, with per-event token-bucket sampling so an
   overloaded daemon logs a bounded number of lines per second and
   *counts* what it suppressed instead of silently thinning.

   Emission takes a mutex: lines from pool domains must not interleave
   on the shared sink, and log volume is bounded by design (requests,
   not nodes), so the lock is never on a hot path. *)

type level = Debug | Info | Warn | Error

let level_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string = function
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" -> Some Warn
  | "error" -> Some Error
  | _ -> None

let severity = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let m_lines = Registry.counter "log.lines"
let m_suppressed = Registry.counter "log.suppressed"

(* Defaults: warnings and errors to stderr.  The daemon raises the
   level to [Info] and may point the sink at a file; library code just
   emits and lets the process decide what is visible. *)
let threshold = Atomic.make (severity Warn)
let set_level l = Atomic.set threshold (severity l)
let enabled l = severity l >= Atomic.get threshold

let stderr_sink line =
  output_string stderr line;
  output_char stderr '\n';
  flush stderr

let lock = Mutex.create ()
let sink : (string -> unit) option ref = ref (Some stderr_sink)

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let set_sink s = locked (fun () -> sink := s)

let channel_sink oc line =
  output_string oc line;
  output_char oc '\n';
  flush oc

(* -------------------------- rate limiting -------------------------- *)

(* One token bucket per event name: [burst] tokens, refilled at
   [per_s] tokens per second.  A denied emission bumps the event's
   suppressed count; the next permitted line of the same event carries
   it as ["suppressed"], so sampling is visible in the stream itself. *)

type bucket = { mutable tokens : float; mutable last_ns : int; mutable lost : int }

let default_burst = 64.
let default_per_s = 128.
let burst = ref default_burst
let per_s = ref default_per_s

let buckets : (string, bucket) Hashtbl.t = Hashtbl.create 32

let set_rate ~burst:b ~per_s:r =
  if b < 1. || r < 0. then invalid_arg "Log.set_rate";
  locked (fun () ->
      burst := b;
      per_s := r;
      Hashtbl.reset buckets)

(* called under [lock] *)
let admit event now_ns =
  let b =
    match Hashtbl.find_opt buckets event with
    | Some b -> b
    | None ->
      let b = { tokens = !burst; last_ns = now_ns; lost = 0 } in
      Hashtbl.add buckets event b;
      b
  in
  let dt = float_of_int (now_ns - b.last_ns) /. 1e9 in
  if dt > 0. then begin
    b.tokens <- Float.min !burst (b.tokens +. (dt *. !per_s));
    b.last_ns <- now_ns
  end;
  if b.tokens >= 1. then begin
    b.tokens <- b.tokens -. 1.;
    let lost = b.lost in
    b.lost <- 0;
    Some lost
  end
  else begin
    b.lost <- b.lost + 1;
    None
  end

(* ---------------------------- emission ----------------------------- *)

let render ~ts_ns ~level ~event ~suppressed fields =
  let base =
    [
      ("schema", Json.String "log/v1");
      ("ts_ns", Json.Int ts_ns);
      ("level", Json.String (level_to_string level));
      ("event", Json.String event);
    ]
  in
  let tail = if suppressed > 0 then [ ("suppressed", Json.Int suppressed) ] else [] in
  Json.to_string ~minify:true
    (Json.Obj (base @ [ ("fields", Json.Obj fields) ] @ tail))

let emit ?(level = Info) event fields =
  if enabled level then begin
    let now_ns = Clock.now_ns () in
    locked (fun () ->
        match !sink with
        | None -> ()
        | Some write -> (
          match admit event now_ns with
          | None -> Metric.incr m_suppressed
          | Some suppressed ->
            Metric.incr m_lines;
            write (render ~ts_ns:now_ns ~level ~event ~suppressed fields)))
  end
