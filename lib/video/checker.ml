module I = Spi.Ids

type report = {
  clean : int;
  held : int;
  invalid_clean : int list;
  frames_in : int;
  dropped : int;
  reconfigurations : int;
  reconfiguration_time : int;
  frame_latencies : (int * int) list;
}

(* Which variant each stage used for each image, recovered from the
   processing-mode names of completed executions.  Only tokens produced
   on the stage's data output channel count: state and confirmation
   tokens never carry the frame.  The result is an image-keyed table so
   the per-output-frame consistency check below is a lookup, not a scan
   of the whole trace. *)
let stage_variants trace pid out_chan =
  let table : (int, string) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun entry ->
      match entry with
      | Sim.Trace.Completed { process; firing; _ }
        when I.Process_id.equal process pid -> (
        match System.variant_of_mode firing.Spi.Semantics.mode with
        | None -> ()
        | Some v ->
          List.iter
            (fun (cid, tokens) ->
              if I.Channel_id.equal cid out_chan then
                List.iter
                  (fun tok ->
                    match Spi.Token.payload tok with
                    | Some image ->
                      (* last writer wins, matching the old assoc order *)
                      Hashtbl.replace table image v
                    | None -> ())
                  tokens)
            firing.Spi.Semantics.produced)
      | Sim.Trace.Completed _ | Sim.Trace.Injected _ | Sim.Trace.Started _
      | Sim.Trace.Faulted _ | Sim.Trace.Quiescent _ -> ())
    trace;
  table

let check ?(stages = 2) (result : Sim.Engine.result) =
  let trace = result.Sim.Engine.trace in
  let per_stage =
    List.init stages (fun i ->
        let stage = i + 1 in
        stage_variants trace
          (System.stage_process stage)
          (System.chain_channel (stage + 1)))
  in
  let variants_of image =
    List.filter_map (fun table -> Hashtbl.find_opt table image) per_stage
  in
  let outputs = Sim.Trace.tokens_produced_on System.c_vout trace in
  let clean, held, invalid =
    List.fold_left
      (fun (clean, held, invalid) (_, tok) ->
        if Spi.Token.has_tag Frames.held_tag tok then (clean, held + 1, invalid)
        else
          let invalid =
            match Spi.Token.payload tok with
            | None -> invalid
            | Some image -> (
              match variants_of image with
              | [] | [ _ ] -> invalid
              | v :: rest ->
                if List.for_all (String.equal v) rest then invalid
                else image :: invalid)
          in
          (clean + 1, held, invalid))
      (0, 0, []) outputs
  in
  let frames_in =
    List.length
      (List.filter
         (function
           | Sim.Trace.Injected { channel; _ } ->
             I.Channel_id.equal channel System.c_vin
           | Sim.Trace.Started _ | Sim.Trace.Completed _
           | Sim.Trace.Faulted _ | Sim.Trace.Quiescent _ -> false)
         trace)
  in
  let injected_at : (int, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (function
      | Sim.Trace.Injected { time; channel; token }
        when I.Channel_id.equal channel System.c_vin ->
        Option.iter
          (fun image ->
            (* first injection wins, matching the old assoc order *)
            if not (Hashtbl.mem injected_at image) then
              Hashtbl.add injected_at image time)
          (Spi.Token.payload token)
      | Sim.Trace.Injected _ | Sim.Trace.Started _ | Sim.Trace.Completed _
      | Sim.Trace.Faulted _ | Sim.Trace.Quiescent _ -> ())
    trace;
  let frame_latencies =
    List.filter_map
      (fun (time, tok) ->
        if Spi.Token.has_tag Frames.held_tag tok then None
        else
          match Spi.Token.payload tok with
          | None -> None
          | Some image -> (
            match Hashtbl.find_opt injected_at image with
            | Some injected -> Some (image, time - injected)
            | None -> None))
      outputs
  in
  let reconfs = Sim.Trace.reconfigurations trace in
  {
    clean;
    held;
    invalid_clean = List.rev invalid;
    frames_in;
    dropped = frames_in - clean - held;
    reconfigurations = List.length reconfs;
    reconfiguration_time = result.Sim.Engine.reconfiguration_time;
    frame_latencies;
  }

let is_safe r = r.invalid_clean = []

let latency_stats r =
  match r.frame_latencies with
  | [] -> None
  | (_, first) :: rest ->
    let n = List.length r.frame_latencies in
    let total, worst =
      List.fold_left
        (fun (total, worst) (_, l) -> (total + l, max worst l))
        (first, first) rest
    in
    Some (float_of_int total /. float_of_int n, worst)

let pp ppf r =
  Format.fprintf ppf
    "in=%d clean=%d held=%d dropped=%d invalid=%d reconfs=%d (time %d)"
    r.frames_in r.clean r.held r.dropped
    (List.length r.invalid_clean)
    r.reconfigurations r.reconfiguration_time

(* ------------------------- deadline headroom ------------------------ *)

type headroom_row = {
  hr_process : string;
  hr_deadline : int;
  hr_count : int;
  hr_p50 : int option;
  hr_p99 : int option;
  hr_headroom : int option;
  hr_violations : (int * int) list;
}

let default_deadline p = Some (Interval.hi (Spi.Process.latency_hull p))

let deadline_headroom ?deadline_of model results =
  let deadline_of =
    match deadline_of with
    | Some f -> fun p -> f (Spi.Process.id p)
    | None -> default_deadline
  in
  List.filter_map
    (fun p ->
      match deadline_of p with
      | None -> None
      | Some deadline ->
        let pid = Spi.Process.id p in
        let key = I.Process_id.to_string pid in
        let h = Obs.Registry.histogram ("sim.latency." ^ key) in
        let p50 = Obs.Metric.quantile h 0.5
        and p99 = Obs.Metric.quantile h 0.99 in
        let violations =
          List.concat_map
            (fun (r : Sim.Engine.result) ->
              List.filter_map
                (function
                  | Sim.Trace.Completed { time; started_at; process; _ }
                    when I.Process_id.equal process pid
                         && time - started_at > deadline ->
                    Some (time, time - started_at)
                  | Sim.Trace.Completed _ | Sim.Trace.Injected _
                  | Sim.Trace.Started _ | Sim.Trace.Faulted _
                  | Sim.Trace.Quiescent _ -> None)
                r.Sim.Engine.trace)
            results
        in
        Some
          {
            hr_process = key;
            hr_deadline = deadline;
            hr_count = Obs.Metric.count h;
            hr_p50 = p50;
            hr_p99 = p99;
            hr_headroom = Option.map (fun q -> deadline - q) p99;
            hr_violations = violations;
          })
    (Spi.Model.processes model)

let pp_headroom ppf rows =
  let opt = function Some v -> string_of_int v | None -> "-" in
  Format.fprintf ppf "@[<v>deadline headroom (latency vs declared worst case):@,";
  List.iter
    (fun r ->
      Format.fprintf ppf
        "  %-8s deadline=%-4d n=%-5d p50=%-4s p99=%-4s headroom=%-4s violations=%d@,"
        r.hr_process r.hr_deadline r.hr_count (opt r.hr_p50) (opt r.hr_p99)
        (opt r.hr_headroom)
        (List.length r.hr_violations);
      List.iteri
        (fun i (at, lat) ->
          if i < 5 then
            Format.fprintf ppf "    t=%d latency=%d (+%d over)@," at lat
              (lat - r.hr_deadline))
        r.hr_violations;
      if List.length r.hr_violations > 5 then
        Format.fprintf ppf "    ... %d more@,"
          (List.length r.hr_violations - 5))
    rows;
  Format.fprintf ppf "@]"
