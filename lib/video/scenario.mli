(** Scripted stimuli for the video system. *)

val video_stream : ?start:int -> period:int -> frames:int -> unit -> Sim.Engine.stimulus list
(** Injects frames [1..frames] on [CVin] every [period] time units,
    beginning at [start] (default [1]). *)

val user_request : at:int -> variant:string -> Sim.Engine.stimulus
(** A user request token asking for [variant], injected on [CUser]. *)

val user_requests : (int * string) list -> Sim.Engine.stimulus list

val switching_demo :
  ?frames:int -> ?period:int -> switches:(int * string) list -> unit ->
  Sim.Engine.stimulus list
(** A stream plus a series of variant switches — the default workload of
    the Figure 4 experiments. *)

val bursty_stream :
  ?start:int -> burst:int -> gap:int -> bursts:int -> unit ->
  Sim.Engine.stimulus list
(** [bursts] groups of [burst] back-to-back frames separated by [gap]
    idle time units — stresses queue high-water marks. *)

val degradation_policy : System.built -> Sim.Fault.degradation
(** The video system's watchdog policy: after two failures a stage is
    degraded to its other variant configuration
    ({!Sim.Fault.fallback_of_configurations}), and a user request for
    the fallback variant is injected on [CUser] so the controller's own
    switching protocol — valves closed, stages acknowledged, valves
    reopened — completes the recovery. *)

val fault_plan :
  ?drop_probability:float ->
  ?transient_probability:float ->
  ?max_retries:int ->
  ?backoff:int ->
  seed:int ->
  System.built ->
  Sim.Fault.plan
(** The standard fault campaign for one seed: frames lost on [CVin] with
    [drop_probability] (default 0.02) and transient firing failures on
    every stage with [transient_probability] (default 0.05), retried up
    to [max_retries] (default 2) times with [backoff] (default 2) time
    units each, under {!degradation_policy}.  The same seed reproduces
    the same run exactly. *)

val periodic_requests :
  first:int -> every:int -> count:int -> variants:string list ->
  Sim.Engine.stimulus list
(** [count] user requests from [first] on, every [every] time units,
    cycling through [variants] — a request storm for protocol stress
    tests. *)
