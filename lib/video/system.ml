module I = Spi.Ids

type params = {
  variants : (string * int * int) list;
  with_valves : bool;
  stages : int;
}

let default_params =
  { variants = [ ("fA", 2, 4); ("fB", 3, 6) ]; with_valves = true; stages = 2 }

type built = {
  model : Spi.Model.t;
  configurations : Variants.Configuration.t list;
  params : params;
}

let chan = I.Channel_id.of_string
let c_vin = chan "CVin"
let c_vout = chan "CVout"
let c_user = chan "CUser"
let chain_channel i = chan (Format.sprintf "CV%d" i)
let c_v1 = chain_channel 1
let c_v2 = chain_channel 2
let c_v3 = chain_channel 3
let c_req stage = chan (Format.sprintf "CReq%d" stage)
let c_con stage = chan (Format.sprintf "CCon%d" stage)
let c_in = chan "CIn"
let c_sus = chan "CSus"
let c_conout = chan "CConOut"
let c_ctrl = chan "CCTRL"
let s_in = chan "SIn"
let s_out = chan "SOut"
let s_stage stage = chan (Format.sprintf "S%d" stage)

let p_in = I.Process_id.of_string "PIn"
let p_out = I.Process_id.of_string "POut"
let p_control = I.Process_id.of_string "PControl"
let stage_process i = I.Process_id.of_string (Format.sprintf "P%d" i)
let p_stage1 = stage_process 1
let p_stage2 = stage_process 2

let proc_mode ~stage v = I.Mode_id.of_string (Format.sprintf "P%d.proc:%s" stage v)

(* Variant recovery parses the id's name once; results are memoized in
   id-keyed tables because the checker asks for every completed firing
   and every reconfiguration of a trace.  The checker also runs on pool
   domains (faultsim fans seeds out), so the caches are mutex-guarded. *)
let memoize (type k) (module Tbl : Hashtbl.S with type key = k) size f =
  let cache = Tbl.create size in
  let lock = Mutex.create () in
  fun key ->
    Mutex.lock lock;
    match Tbl.find_opt cache key with
    | Some v ->
      Mutex.unlock lock;
      v
    | None ->
      Mutex.unlock lock;
      let v = f key in
      Mutex.lock lock;
      if not (Tbl.mem cache key) then Tbl.add cache key v;
      Mutex.unlock lock;
      v

let variant_of_mode =
  memoize
    (module I.Mode_id.Tbl)
    64
    (fun mid ->
      let s = I.Mode_id.to_string mid in
      match String.index_opt s ':' with
      | None -> None
      | Some i ->
        let prefix = String.sub s 0 i in
        if
          String.length prefix >= 4
          && (String.ends_with ~suffix:".proc" prefix
             || String.ends_with ~suffix:".proc_fresh" prefix
             || String.ends_with ~suffix:".ack" prefix)
        then Some (String.sub s (i + 1) (String.length s - i - 1))
        else None)

let stage_config ~stage v =
  I.Config_id.of_string (Format.sprintf "P%d.conf:%s" stage v)

let variant_of_config =
  memoize
    (module I.Config_id.Tbl)
    16
    (fun cid ->
      let s = I.Config_id.to_string cid in
      match String.index_opt s ':' with
      | None -> None
      | Some i ->
        if String.ends_with ~suffix:".conf" (String.sub s 0 i) then
          Some (String.sub s (i + 1) (String.length s - i - 1))
        else None)

let one = Interval.point 1
let state_token name = Spi.Token.make ~tags:(Spi.Tag.Set.singleton (Frames.state_tag name)) ()

let mode ?payload_policy name ~latency ~consumes ~produces =
  Spi.Mode.make ?payload_policy ~latency:(Interval.point latency) ~consumes
    ~produces
    (I.Mode_id.of_string name)

let produce1 ?tags () = Spi.Mode.produce ?tags one
let tagset tag = Spi.Tag.Set.singleton tag
let st name = Frames.state_tag name

let rule name guard mode_name =
  Spi.Activation.rule (I.Rule_id.of_string name) ~guard
    ~mode:(I.Mode_id.of_string mode_name)

open Spi.Predicate

(* ------------------------------------------------------------------ *)
(* PIn: the input valve.                                               *)
(* ------------------------------------------------------------------ *)

let valve_in ~with_valves =
  if not with_valves then
    Spi.Process.simple ~latency:(Interval.point 1)
      ~consumes:[ (c_vin, one) ]
      ~produces:[ (c_v1, produce1 ()) ]
      p_in
  else
    let modes =
      [
        mode ~payload_policy:Spi.Mode.Fresh "PIn.suspend" ~latency:0
          ~consumes:[ (c_in, one); (s_in, one) ]
          ~produces:[ (s_in, produce1 ~tags:(tagset (st "susp")) ()) ];
        mode ~payload_policy:Spi.Mode.Fresh "PIn.resume" ~latency:0
          ~consumes:[ (c_in, one); (s_in, one) ]
          ~produces:[ (s_in, produce1 ~tags:(tagset (st "fresh1")) ()) ];
        mode "PIn.pass_fresh" ~latency:1
          ~consumes:[ (s_in, one); (c_vin, one) ]
          ~produces:
            [
              (s_in, produce1 ~tags:(tagset (st "normal")) ());
              (c_v1, produce1 ~tags:(tagset Frames.fresh_tag) ());
            ];
        mode ~payload_policy:Spi.Mode.Fresh "PIn.drop" ~latency:1
          ~consumes:[ (s_in, one); (c_vin, one) ]
          ~produces:[ (s_in, produce1 ~tags:(tagset (st "susp")) ()) ];
        mode "PIn.pass" ~latency:1
          ~consumes:[ (s_in, one); (c_vin, one) ]
          ~produces:
            [
              (s_in, produce1 ~tags:(tagset (st "normal")) ());
              (c_v1, produce1 ());
            ];
      ]
    in
    let activation =
      Spi.Activation.make
        [
          rule "PIn.a_susp"
            (conj [ num_at_least c_in 1; has_tag c_in Frames.suspend_tag ])
            "PIn.suspend";
          rule "PIn.a_res"
            (conj [ num_at_least c_in 1; has_tag c_in Frames.resume_tag ])
            "PIn.resume";
          rule "PIn.a_fresh"
            (conj [ has_tag s_in (st "fresh1"); num_at_least c_vin 1 ])
            "PIn.pass_fresh";
          rule "PIn.a_drop"
            (conj [ has_tag s_in (st "susp"); num_at_least c_vin 1 ])
            "PIn.drop";
          rule "PIn.a_pass"
            (conj [ has_tag s_in (st "normal"); num_at_least c_vin 1 ])
            "PIn.pass";
        ]
    in
    Spi.Process.make ~activation ~modes p_in

(* ------------------------------------------------------------------ *)
(* Stages P1 / P2: variant processes with configurations.              *)
(* ------------------------------------------------------------------ *)

let stage ~stage:(n : int) ~variants ~input ~output =
  let pid = stage_process n in
  let s = s_stage n and req = c_req n and con = c_con n in
  let prefix = Format.sprintf "P%d" n in
  let modes_of_variant (v, latency, _) =
    [
      mode ~payload_policy:Spi.Mode.Fresh
        (Format.sprintf "%s.ack:%s" prefix v)
        ~latency:1
        ~consumes:[ (req, one); (s, one) ]
        ~produces:
          [
            (s, produce1 ~tags:(tagset (st v)) ());
            (con, produce1 ~tags:(tagset (Spi.Tag.make "done")) ());
          ];
      mode
        (Format.sprintf "%s.proc_fresh:%s" prefix v)
        ~latency
        ~consumes:[ (s, one); (input, one) ]
        ~produces:
          [
            (s, produce1 ~tags:(tagset (st v)) ());
            (output, produce1 ~tags:(tagset Frames.fresh_tag) ());
          ];
      mode
        (Format.sprintf "%s.proc:%s" prefix v)
        ~latency
        ~consumes:[ (s, one); (input, one) ]
        ~produces:
          [ (s, produce1 ~tags:(tagset (st v)) ()); (output, produce1 ()) ];
    ]
  in
  let rules_of_variant (v, _, _) =
    [
      rule
        (Format.sprintf "%s.a_ack:%s" prefix v)
        (conj [ num_at_least req 1; has_tag req (Frames.variant_request_tag v) ])
        (Format.sprintf "%s.ack:%s" prefix v);
      rule
        (Format.sprintf "%s.a_fresh:%s" prefix v)
        (conj
           [
             has_tag s (st v); num_at_least input 1; has_tag input Frames.fresh_tag;
           ])
        (Format.sprintf "%s.proc_fresh:%s" prefix v);
      rule
        (Format.sprintf "%s.a_proc:%s" prefix v)
        (conj [ has_tag s (st v); num_at_least input 1 ])
        (Format.sprintf "%s.proc:%s" prefix v);
    ]
  in
  (* Acknowledge rules of every variant come before any processing rule
     so pending requests preempt the data stream. *)
  let ack_rules, data_rules =
    List.fold_right
      (fun v (acks, datas) ->
        match rules_of_variant v with
        | [ a; f; p ] -> (a :: acks, f :: p :: datas)
        | _ -> assert false)
      variants ([], [])
  in
  let process =
    Spi.Process.make
      ~activation:(Spi.Activation.make (ack_rules @ data_rules))
      ~modes:(List.concat_map modes_of_variant variants)
      pid
  in
  let entries =
    List.map
      (fun (v, _, reconf_latency) ->
        Variants.Configuration.entry ~reconf_latency
          (Format.sprintf "%s.conf:%s" prefix v)
          ~modes:
            [
              I.Mode_id.of_string (Format.sprintf "%s.ack:%s" prefix v);
              I.Mode_id.of_string (Format.sprintf "%s.proc_fresh:%s" prefix v);
              I.Mode_id.of_string (Format.sprintf "%s.proc:%s" prefix v);
            ])
      variants
  in
  let initial =
    match variants with
    | (v, _, _) :: _ ->
      Some (I.Config_id.of_string (Format.sprintf "%s.conf:%s" prefix v))
    | [] -> None
  in
  let configuration =
    Variants.Configuration.make ?initial ~process:pid entries
  in
  (process, configuration)

(* ------------------------------------------------------------------ *)
(* POut: the output valve.                                             *)
(* ------------------------------------------------------------------ *)

let valve_out ?(input = c_v3) ~with_valves () =
  if not with_valves then
    Spi.Process.simple ~latency:(Interval.point 1)
      ~consumes:[ (input, one) ]
      ~produces:[ (c_vout, produce1 ()) ]
      p_out
  else
    let modes =
      [
        mode ~payload_policy:Spi.Mode.Fresh "POut.suspend" ~latency:0
          ~consumes:[ (c_sus, one); (s_out, one) ]
          ~produces:[ (s_out, produce1 ~tags:(tagset (st "susp")) ()) ];
        mode "POut.resume_fwd" ~latency:1
          ~consumes:[ (s_out, one); (input, one) ]
          ~produces:
            [
              (s_out, produce1 ~tags:(tagset (st "normal")) ());
              (c_vout, produce1 ());
              (c_conout, produce1 ~tags:(tagset (Spi.Tag.make "resumed")) ());
            ];
        mode "POut.hold" ~latency:1
          ~consumes:[ (s_out, one); (input, one) ]
          ~produces:
            [
              (s_out, produce1 ~tags:(tagset (st "susp")) ());
              (c_vout, produce1 ~tags:(tagset Frames.held_tag) ());
            ];
        mode "POut.fwd" ~latency:1
          ~consumes:[ (s_out, one); (input, one) ]
          ~produces:
            [
              (s_out, produce1 ~tags:(tagset (st "normal")) ());
              (c_vout, produce1 ());
            ];
      ]
    in
    let activation =
      Spi.Activation.make
        [
          rule "POut.a_susp"
            (conj [ num_at_least c_sus 1; has_tag c_sus Frames.suspend_tag ])
            "POut.suspend";
          rule "POut.a_resume"
            (conj
               [
                 has_tag s_out (st "susp");
                 num_at_least input 1;
                 has_tag input Frames.fresh_tag;
               ])
            "POut.resume_fwd";
          rule "POut.a_hold"
            (conj [ has_tag s_out (st "susp"); num_at_least input 1 ])
            "POut.hold";
          rule "POut.a_fwd"
            (conj [ has_tag s_out (st "normal"); num_at_least input 1 ])
            "POut.fwd";
        ]
    in
    Spi.Process.make ~activation ~modes p_out

(* ------------------------------------------------------------------ *)
(* PControl.                                                           *)
(* ------------------------------------------------------------------ *)

let controller ~with_valves ~variants ~stages =
  let stage_ids = List.init stages (fun i -> i + 1) in
  let dispatch_produces v =
    let requests =
      List.map
        (fun i ->
          (c_req i, produce1 ~tags:(tagset (Frames.variant_request_tag v)) ()))
        stage_ids
      @ [ (c_ctrl, produce1 ~tags:(tagset (st "wait")) ()) ]
    in
    if with_valves then
      (c_in, produce1 ~tags:(tagset Frames.suspend_tag) ())
      :: (c_sus, produce1 ~tags:(tagset Frames.suspend_tag) ())
      :: requests
    else requests
  in
  let dispatch_mode (v, _, _) =
    mode ~payload_policy:Spi.Mode.Fresh
      (Format.sprintf "PControl.dispatch:%s" v)
      ~latency:1
      ~consumes:[ (c_user, one); (c_ctrl, one) ]
      ~produces:(dispatch_produces v)
  in
  let finish_produces =
    if with_valves then
      [
        (c_in, produce1 ~tags:(tagset Frames.resume_tag) ());
        (c_ctrl, produce1 ~tags:(tagset (st "wait_out")) ());
      ]
    else [ (c_ctrl, produce1 ~tags:(tagset (st "idle")) ()) ]
  in
  let finish_mode =
    mode ~payload_policy:Spi.Mode.Fresh "PControl.finish" ~latency:1
      ~consumes:(List.map (fun i -> (c_con i, one)) stage_ids @ [ (c_ctrl, one) ])
      ~produces:finish_produces
  in
  (* The round only closes once POut confirmed it resumed; accepting a
     new user request earlier would let a stale fresh-tagged frame of
     the previous round re-open the output valve mid-reconfiguration. *)
  let complete_mode =
    mode ~payload_policy:Spi.Mode.Fresh "PControl.complete" ~latency:0
      ~consumes:[ (c_conout, one); (c_ctrl, one) ]
      ~produces:[ (c_ctrl, produce1 ~tags:(tagset (st "idle")) ()) ]
  in
  let dispatch_rule (v, _, _) =
    rule
      (Format.sprintf "PControl.a_dispatch:%s" v)
      (conj
         [
           has_tag c_ctrl (st "idle");
           num_at_least c_user 1;
           has_tag c_user (Frames.variant_request_tag v);
         ])
      (Format.sprintf "PControl.dispatch:%s" v)
  in
  let finish_rule =
    rule "PControl.a_finish"
      (conj
         (has_tag c_ctrl (st "wait")
          :: List.map (fun i -> num_at_least (c_con i) 1) stage_ids))
      "PControl.finish"
  in
  let complete_rule =
    rule "PControl.a_complete"
      (conj [ has_tag c_ctrl (st "wait_out"); num_at_least c_conout 1 ])
      "PControl.complete"
  in
  let rules, modes =
    if with_valves then
      ( List.map dispatch_rule variants @ [ finish_rule; complete_rule ],
        List.map dispatch_mode variants @ [ finish_mode; complete_mode ] )
    else
      ( List.map dispatch_rule variants @ [ finish_rule ],
        List.map dispatch_mode variants @ [ finish_mode ] )
  in
  Spi.Process.make ~activation:(Spi.Activation.make rules) ~modes p_control

let build params =
  (match params.variants with
  | [] -> invalid_arg "Video.System.build: no variants"
  | _ :: _ -> ());
  let initial_variant =
    match params.variants with (v, _, _) :: _ -> v | [] -> assert false
  in
  if params.stages < 1 then invalid_arg "Video.System.build: stages < 1";
  let with_valves = params.with_valves in
  let stage_ids = List.init params.stages (fun i -> i + 1) in
  let built_stages =
    List.map
      (fun i ->
        stage ~stage:i ~variants:params.variants ~input:(chain_channel i)
          ~output:(chain_channel (i + 1)))
      stage_ids
  in
  let processes =
    [ valve_in ~with_valves ]
    @ List.map fst built_stages
    @ [
        valve_out ~input:(chain_channel (params.stages + 1)) ~with_valves ();
        controller ~with_valves ~variants:params.variants
          ~stages:params.stages;
      ]
  in
  let state_queue cid name = Spi.Chan.queue ~initial:[ state_token name ] cid in
  let channels =
    [ Spi.Chan.queue c_vin; Spi.Chan.queue c_vout; Spi.Chan.queue c_user ]
    @ List.map (fun i -> Spi.Chan.queue (chain_channel i)) (List.init (params.stages + 1) (fun i -> i + 1))
    @ List.concat_map
        (fun i -> [ Spi.Chan.queue (c_req i); Spi.Chan.queue (c_con i) ])
        stage_ids
    @ [ state_queue c_ctrl "idle" ]
    @ List.map (fun i -> state_queue (s_stage i) initial_variant) stage_ids
    @
    if with_valves then
      [
        Spi.Chan.queue c_in;
        Spi.Chan.queue c_sus;
        Spi.Chan.queue c_conout;
        state_queue s_in "normal";
        state_queue s_out "normal";
      ]
    else []
  in
  let model = Spi.Model.build_exn ~processes ~channels in
  { model; configurations = List.map snd built_stages; params }
