(** The reconfigurable video system of Figure 4.

    A two-stage processing chain [P1 -> P2] on a video stream, a
    controller [PControl] that switches both stages between function
    variants on user requests, and the valves [PIn]/[POut] that prevent
    buffer overflows and invalid output images during reconfiguration:
    [PIn] destroys input frames while suspended, [POut] replaces chain
    output by the last completely modified image (tagged
    {!Frames.held_tag}) until the first fresh frame arrives.

    Stage variants are abstract processes with one configuration per
    variant (Def. 4); switching variants costs the per-variant
    reconfiguration latency.  The [~with_valves:false] ablation removes
    the valves so the invalid-image property becomes falsifiable. *)

type params = {
  variants : (string * int * int) list;
      (** (variant name, processing latency, reconfiguration latency);
          the first variant is the initial configuration *)
  with_valves : bool;
  stages : int;
      (** processing-chain length; the paper's example uses 2 ("to
          simplify matters") *)
}

val default_params : params
(** Two variants [fA] (latency 2, t_conf 4) and [fB] (latency 3,
    t_conf 6), two stages, valves enabled. *)

type built = {
  model : Spi.Model.t;
  configurations : Variants.Configuration.t list;
  params : params;
}

val build : params -> built
(** @raise Invalid_argument when [variants] is empty, [stages < 1], or
    the model fails validation (cannot happen for sane parameters). *)

(** Channel names used by scenarios and checkers. *)
val c_vin : Spi.Ids.Channel_id.t
val c_vout : Spi.Ids.Channel_id.t
val c_user : Spi.Ids.Channel_id.t
val c_v1 : Spi.Ids.Channel_id.t
val c_v2 : Spi.Ids.Channel_id.t
val c_v3 : Spi.Ids.Channel_id.t

val p_in : Spi.Ids.Process_id.t
val p_out : Spi.Ids.Process_id.t
val p_control : Spi.Ids.Process_id.t

val stage_process : int -> Spi.Ids.Process_id.t
(** [stage_process i] is ["P<i>"] (1-based). *)

val chain_channel : int -> Spi.Ids.Channel_id.t
(** [chain_channel i] connects stage [i-1] (or [PIn] for [i = 1]) to
    stage [i] (or [POut] for [i = stages + 1]). *)

val p_stage1 : Spi.Ids.Process_id.t
val p_stage2 : Spi.Ids.Process_id.t

val proc_mode : stage:int -> string -> Spi.Ids.Mode_id.t
(** The processing mode id of a stage variant (used by the checker to
    recover which variant processed a frame). *)

val variant_of_mode : Spi.Ids.Mode_id.t -> string option
(** Inverse of the stage mode naming: the variant name encoded in a
    processing/ack mode id, [None] for valve or controller modes. *)

val stage_config : stage:int -> string -> Spi.Ids.Config_id.t
(** The configuration id of a stage variant: ["P<i>.conf:<variant>"]. *)

val variant_of_config : Spi.Ids.Config_id.t -> string option
(** Inverse of {!stage_config}: the variant a stage configuration
    implements. *)
