let video_stream ?(start = 1) ~period ~frames () =
  List.init frames (fun i ->
      {
        Sim.Engine.at = start + (i * period);
        channel = System.c_vin;
        token = Frames.frame (i + 1);
      })

let user_request ~at ~variant =
  {
    Sim.Engine.at;
    channel = System.c_user;
    token =
      Spi.Token.make
        ~tags:(Spi.Tag.Set.singleton (Frames.variant_request_tag variant))
        ();
  }

let user_requests reqs =
  List.map (fun (at, variant) -> user_request ~at ~variant) reqs

let switching_demo ?(frames = 40) ?(period = 5) ~switches () =
  video_stream ~period ~frames () @ user_requests switches

let bursty_stream ?(start = 1) ~burst ~gap ~bursts () =
  List.concat
    (List.init bursts (fun b ->
         List.init burst (fun i ->
             {
               Sim.Engine.at = start + (b * (burst + gap)) + i;
               channel = System.c_vin;
               token = Frames.frame ((b * burst) + i + 1);
             })))

let degradation_policy (built : System.built) =
  let fallback =
    Sim.Fault.fallback_of_configurations built.System.configurations
  in
  let recovery _pid target =
    match System.variant_of_config target with
    | None -> []
    | Some v ->
      (* let the controller's own protocol perform the switch: valves
         close, both stages acknowledge the fallback variant, valves
         reopen *)
      [
        ( System.c_user,
          Spi.Token.make
            ~tags:(Spi.Tag.Set.singleton (Frames.variant_request_tag v))
            () );
      ]
  in
  Sim.Fault.degradation ~failure_threshold:2 ~recovery_stimuli:recovery
    ~fallback ()

let fault_plan ?(drop_probability = 0.02) ?(transient_probability = 0.05)
    ?(max_retries = 2) ?(backoff = 2) ~seed (built : System.built) =
  let channels =
    [
      Sim.Fault.on_channel System.c_vin Sim.Fault.Drop
        (Sim.Fault.Probability drop_probability);
    ]
  in
  let processes =
    List.init built.System.params.System.stages (fun i ->
        Sim.Fault.on_process
          ~transient:(Sim.Fault.Probability transient_probability)
          ~max_retries ~backoff
          (System.stage_process (i + 1)))
  in
  Sim.Fault.plan ~channels ~processes ~degrade:(degradation_policy built)
    ~seed ()

let periodic_requests ~first ~every ~count ~variants =
  match variants with
  | [] -> invalid_arg "Scenario.periodic_requests: no variants"
  | _ :: _ ->
    let n = List.length variants in
    List.init count (fun i ->
        user_request
          ~at:(first + (i * every))
          ~variant:(List.nth variants (i mod n)))
