(** The invalid-image property.

    "An image becomes invalid if either P1 or P2 or both are
    reconfigured during processing that image."  In the model, a clean
    (untagged) output frame is {e invalid} when the two stages processed
    it under different variants, or when a stage reconfigured while the
    frame sat between the stages.  The checker recovers, per output
    frame, which variant each stage used (from the processing-mode names
    in the trace) and classifies every token on [CVout]. *)

type report = {
  clean : int;  (** untagged output frames *)
  held : int;  (** frames replaced by the last valid image while
                   suspended *)
  invalid_clean : int list;
      (** image numbers emitted clean although inconsistently processed
          — must be empty when the valves are active *)
  frames_in : int;  (** frames injected on [CVin] *)
  dropped : int;  (** frames destroyed by [PIn] or still in flight *)
  reconfigurations : int;
  reconfiguration_time : int;
  frame_latencies : (int * int) list;
      (** (image number, injection-to-clean-output latency) per frame
          that made it through untouched *)
}

val check : ?stages:int -> Sim.Engine.result -> report
(** [stages] is the chain length of the simulated system (default 2,
    matching {!System.default_params}). *)

val is_safe : report -> bool
(** No invalid clean output. *)

val latency_stats : report -> (float * int) option
(** (mean, worst) end-to-end latency over the clean frames; [None] when
    nothing came through. *)

val pp : Format.formatter -> report -> unit

(** {1 Deadline headroom}

    Per-process view of how close execution latencies came to their
    deadlines.  The quantiles are read from the [sim.latency.<process>]
    histograms the engine feeds (so they aggregate every run since the
    registry was last reset — a whole fault campaign); the individual
    violations are recovered from the traces, with their completion
    timestamps, so each one can be located in an exported timeline. *)

type headroom_row = {
  hr_process : string;
  hr_deadline : int;
  hr_count : int;  (** histogram observations for this process *)
  hr_p50 : int option;
  hr_p99 : int option;
  hr_headroom : int option;  (** [deadline - p99]; negative = violated *)
  hr_violations : (int * int) list;
      (** (completion time, latency) per execution over deadline,
          chronological across the given runs *)
}

val deadline_headroom :
  ?deadline_of:(Spi.Ids.Process_id.t -> int option) ->
  Spi.Model.t ->
  Sim.Engine.result list ->
  headroom_row list
(** One row per model process (model order), skipping processes
    [deadline_of] maps to [None].  The default deadline is the upper
    bound of the process's {!Spi.Process.latency_hull} — its declared
    worst-case mode latency — which reconfiguration steps ([t_conf]) and
    fault backoffs push executions past. *)

val pp_headroom : Format.formatter -> headroom_row list -> unit
