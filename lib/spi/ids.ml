module type ID = sig
  type t

  val of_string : string -> t
  val to_string : t -> string
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val pp : Format.formatter -> t -> unit

  module Set : Set.S with type elt = t
  module Map : Map.S with type key = t
  module Tbl : Hashtbl.S with type key = t
end

module Make_id () : ID = struct
  type t = string

  let of_string s =
    if String.length s = 0 then invalid_arg "Ids: empty identifier" else s

  let to_string s = s
  let equal = String.equal
  let compare = String.compare
  let pp = Format.pp_print_string

  module Set = Set.Make (String)
  module Map = Map.Make (String)

  module Tbl = Hashtbl.Make (struct
    type nonrec t = t

    let equal = String.equal
    let hash = Hashtbl.hash
  end)
end

module Process_id = Make_id ()
module Channel_id = Make_id ()
module Mode_id = Make_id ()
module Rule_id = Make_id ()
module Port_id = Make_id ()
module Cluster_id = Make_id ()
module Interface_id = Make_id ()
module Config_id = Make_id ()
module Resource_id = Make_id ()
