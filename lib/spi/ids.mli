(** Typed identifiers.

    Every kind of SPI entity (process, channel, mode, …) gets its own
    abstract identifier type so that, e.g., a mode id can never be used
    where a channel id is expected.  Identifiers wrap non-empty names. *)

module type ID = sig
  type t

  val of_string : string -> t
  (** @raise Invalid_argument on the empty string. *)

  val to_string : t -> string
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val pp : Format.formatter -> t -> unit

  module Set : Set.S with type elt = t
  module Map : Map.S with type key = t

  module Tbl : Hashtbl.S with type key = t
  (** Id-keyed hash tables, for hot paths that resolve an id many times
      per run (the simulator's per-process state, the video checker's
      mode memos) — lookups hash the id directly instead of detouring
      through [to_string] concatenations. *)
end

module Process_id : ID
module Channel_id : ID
module Mode_id : ID
module Rule_id : ID
module Port_id : ID
module Cluster_id : ID
module Interface_id : ID
module Config_id : ID
module Resource_id : ID
