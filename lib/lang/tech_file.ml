module I = Spi.Ids

(* a tiny standalone token cursor; errors reuse {!Parser.Parse_error} *)
type state = { mutable tokens : Lexer.located list }

let error (loc : Lexer.located) fmt =
  Format.kasprintf
    (fun message ->
      raise
        (Parser.Parse_error
           { line = loc.Lexer.line; col = loc.Lexer.col; message }))
    fmt

let peek st = match st.tokens with t :: _ -> t | [] -> assert false

let advance st =
  match st.tokens with _ :: (_ :: _ as rest) -> st.tokens <- rest | _ -> ()

let ident st what =
  let t = peek st in
  advance st;
  match t.Lexer.token with
  | Lexer.IDENT s -> s
  | tok -> error t "expected %s, found %a" what Lexer.pp_token tok

let int_lit st what =
  let t = peek st in
  advance st;
  match t.Lexer.token with
  | Lexer.INT n -> n
  | tok -> error t "expected %s, found %a" what Lexer.pp_token tok

let expect st want describe =
  let t = peek st in
  advance st;
  if t.Lexer.token <> want then
    error t "expected %s, found %a" describe Lexer.pp_token t.Lexer.token

let keyword st kw =
  let t = peek st in
  advance st;
  match t.Lexer.token with
  | Lexer.IDENT s when String.equal s kw -> ()
  | tok -> error t "expected keyword %s, found %a" kw Lexer.pp_token tok

let looking_at st kw =
  match (peek st).Lexer.token with
  | Lexer.IDENT s -> String.equal s kw
  | _ -> false

let of_string input =
  Obs.Registry.with_span "lang.tech_parse_ns" @@ fun () ->
  let tokens =
    try Lexer.tokenize input
    with Lexer.Lex_error { line; col; message } ->
      raise (Parser.Parse_error { line; col; message })
  in
  let st = { tokens } in
  keyword st "tech";
  let _name = ident st "a library name" in
  expect st Lexer.LBRACE "'{'";
  let processor_cost = ref None in
  let entries = ref [] in
  let rec go () =
    if (peek st).Lexer.token = Lexer.RBRACE then advance st
    else if looking_at st "processor" then begin
      advance st;
      processor_cost := Some (int_lit st "a processor cost");
      go ()
    end
    else if looking_at st "impl" then begin
      advance st;
      let pname = ident st "a process name" in
      let sw = ref None and hw = ref None in
      let rec options () =
        if looking_at st "sw" then begin
          advance st;
          sw := Some (int_lit st "a software load");
          options ()
        end
        else if looking_at st "hw" then begin
          advance st;
          hw := Some (int_lit st "a hardware area");
          options ()
        end
      in
      options ();
      let option =
        match !sw, !hw with
        | Some load, Some area -> Synth.Tech.both ~load ~area
        | Some load, None -> Synth.Tech.sw_only ~load
        | None, Some area -> Synth.Tech.hw_only ~area
        | None, None ->
          invalid_arg (Format.sprintf "impl %s: needs sw and/or hw" pname)
      in
      entries := (I.Process_id.of_string pname, option) :: !entries;
      go ()
    end
    else
      let t = peek st in
      error t "expected 'processor', 'impl' or '}', found %a" Lexer.pp_token
        t.Lexer.token
  in
  go ();
  (let t = peek st in
   match t.Lexer.token with
   | Lexer.EOF -> ()
   | tok -> error t "trailing input: %a" Lexer.pp_token tok);
  Synth.Tech.make ?processor_cost:!processor_cost (List.rev !entries)

let of_file path =
  let ic = open_in_bin path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  of_string contents

let to_string ~name tech =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Format.sprintf "tech %s {\n" name);
  Buffer.add_string buf
    (Format.sprintf "  processor %d\n" (Synth.Tech.processor_cost tech));
  List.iter
    (fun pid ->
      let o = Synth.Tech.options_of tech pid in
      Buffer.add_string buf
        (Format.sprintf "  impl %s%s%s\n"
           (I.Process_id.to_string pid)
           (match o.Synth.Tech.sw with
           | Some { Synth.Tech.load } -> Format.sprintf " sw %d" load
           | None -> "")
           (match o.Synth.Tech.hw with
           | Some { Synth.Tech.area } -> Format.sprintf " hw %d" area
           | None -> "")))
    (Synth.Tech.process_ids tech);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
