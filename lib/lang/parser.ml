module I = Spi.Ids
module V = Variants

exception Parse_error of { line : int; col : int; message : string }

type state = { mutable tokens : Lexer.located list }

let error (loc : Lexer.located) fmt =
  Format.kasprintf
    (fun message ->
      raise (Parse_error { line = loc.Lexer.line; col = loc.Lexer.col; message }))
    fmt

let peek st =
  match st.tokens with
  | t :: _ -> t
  | [] -> assert false (* EOF is always present *)

let advance st =
  match st.tokens with
  | _ :: rest when rest <> [] -> st.tokens <- rest
  | _ -> ()

let next st =
  let t = peek st in
  advance st;
  t

let expect st want describe =
  let t = next st in
  if t.Lexer.token = want then ()
  else error t "expected %s, found %a" describe Lexer.pp_token t.Lexer.token

let ident st what =
  let t = next st in
  match t.Lexer.token with
  | Lexer.IDENT s -> s
  | tok -> error t "expected %s, found %a" what Lexer.pp_token tok

let int_lit st what =
  let t = next st in
  match t.Lexer.token with
  | Lexer.INT n -> n
  | tok -> error t "expected %s, found %a" what Lexer.pp_token tok

let keyword st kw =
  let t = next st in
  match t.Lexer.token with
  | Lexer.IDENT s when String.equal s kw -> ()
  | tok -> error t "expected keyword %s, found %a" kw Lexer.pp_token tok

let looking_at st kw =
  match (peek st).Lexer.token with
  | Lexer.IDENT s -> String.equal s kw
  | _ -> false

(* ---------------------------- intervals ----------------------------- *)

let interval st =
  let t = peek st in
  match t.Lexer.token with
  | Lexer.INT n ->
    advance st;
    Interval.point n
  | Lexer.LBRACKET ->
    advance st;
    let lo = int_lit st "interval lower bound" in
    expect st Lexer.COMMA "','";
    let hi = int_lit st "interval upper bound" in
    expect st Lexer.RBRACKET "']'";
    (try Interval.make lo hi
     with Interval.Empty_interval _ -> error t "empty interval [%d,%d]" lo hi)
  | tok -> error t "expected an interval, found %a" Lexer.pp_token tok

let tag_list st =
  (* assumes '[' already consumed; reads TAG* ']' *)
  let rec go acc =
    let t = peek st in
    match t.Lexer.token with
    | Lexer.TAG name ->
      advance st;
      go (Spi.Tag.make name :: acc)
    | Lexer.RBRACKET ->
      advance st;
      List.rev acc
    | tok -> error t "expected a tag or ']', found %a" Lexer.pp_token tok
  in
  go []

(* ---------------------------- predicates ---------------------------- *)

let rec pred st =
  let left = conj st in
  if (peek st).Lexer.token = Lexer.OR then begin
    advance st;
    Spi.Predicate.Or (left, pred st)
  end
  else left

and conj st =
  let left = atom st in
  if (peek st).Lexer.token = Lexer.AND then begin
    advance st;
    Spi.Predicate.And (left, conj st)
  end
  else left

and atom st =
  let t = peek st in
  match t.Lexer.token with
  | Lexer.NOT ->
    advance st;
    Spi.Predicate.Not (atom st)
  | Lexer.LPAREN ->
    advance st;
    let p = pred st in
    expect st Lexer.RPAREN "')'";
    p
  | Lexer.IDENT "true" ->
    advance st;
    Spi.Predicate.True
  | Lexer.IDENT "false" ->
    advance st;
    Spi.Predicate.False
  | Lexer.IDENT "num" ->
    advance st;
    let chan = ident st "a channel name" in
    expect st Lexer.GE "'>='";
    let k = int_lit st "a token count" in
    Spi.Predicate.num_at_least (I.Channel_id.of_string chan) k
  | Lexer.IDENT "tag" ->
    advance st;
    let chan = ident st "a channel name" in
    let t2 = next st in
    (match t2.Lexer.token with
    | Lexer.TAG name ->
      Spi.Predicate.has_tag (I.Channel_id.of_string chan) (Spi.Tag.make name)
    | tok -> error t2 "expected a tag literal, found %a" Lexer.pp_token tok)
  | tok -> error t "expected a predicate, found %a" Lexer.pp_token tok

(* ----------------------------- channels ----------------------------- *)

let channel st =
  keyword st "channel";
  let name = ident st "a channel name" in
  let kind = ident st "'queue' or 'register'" in
  let capacity =
    if looking_at st "capacity" then begin
      advance st;
      Some (int_lit st "a capacity")
    end
    else None
  in
  let initial =
    if looking_at st "initial" then begin
      advance st;
      let t = peek st in
      match t.Lexer.token with
      | Lexer.INT n ->
        advance st;
        Spi.Token.replicate n Spi.Token.plain
      | Lexer.LBRACKET ->
        advance st;
        let tags = tag_list st in
        [ Spi.Token.make ~tags:(Spi.Tag.Set.of_list tags) () ]
      | tok -> error t "expected a count or '[tags]', found %a" Lexer.pp_token tok
    end
    else []
  in
  let cid = I.Channel_id.of_string name in
  match kind with
  | "queue" -> Spi.Chan.queue ~initial ?capacity cid
  | "register" -> (
    match initial with
    | [] -> Spi.Chan.register cid
    | [ tok ] -> Spi.Chan.register ~initial:tok cid
    | _ :: _ :: _ ->
      invalid_arg (Format.sprintf "channel %s: a register holds one token" name))
  | other -> invalid_arg (Format.sprintf "channel %s: unknown kind %s" name other)

(* ----------------------------- processes ---------------------------- *)

let mode_body st name =
  expect st Lexer.LBRACE "'{'";
  let latency = ref (Interval.point 0) in
  let consumes = ref [] and produces = ref [] in
  let payload = ref None in
  let rec go () =
    if (peek st).Lexer.token = Lexer.RBRACE then advance st
    else begin
      (if looking_at st "latency" then begin
         advance st;
         latency := interval st
       end
       else if looking_at st "consume" then begin
         advance st;
         let chan = ident st "a channel name" in
         let rate = interval st in
         consumes := (I.Channel_id.of_string chan, rate) :: !consumes
       end
       else if looking_at st "produce" then begin
         advance st;
         let chan = ident st "a channel name" in
         let rate = interval st in
         let tags =
           if (peek st).Lexer.token = Lexer.LBRACKET then begin
             advance st;
             Spi.Tag.Set.of_list (tag_list st)
           end
           else Spi.Tag.Set.empty
         in
         produces :=
           (I.Channel_id.of_string chan, Spi.Mode.produce ~tags rate) :: !produces
       end
       else if looking_at st "payload" then begin
         advance st;
         let which = ident st "'fresh' or 'inherit'" in
         match which with
         | "fresh" -> payload := Some Spi.Mode.Fresh
         | "inherit" -> payload := Some Spi.Mode.Inherit_first
         | other ->
           invalid_arg (Format.sprintf "mode %s: unknown payload policy %s" name other)
       end
       else
         let t = peek st in
         error t "expected a mode item, found %a" Lexer.pp_token t.Lexer.token);
      go ()
    end
  in
  go ();
  Spi.Mode.make ?payload_policy:!payload ~latency:!latency
    ~consumes:(List.rev !consumes) ~produces:(List.rev !produces)
    (I.Mode_id.of_string name)

let activation_rule st =
  keyword st "rule";
  let name = ident st "a rule name" in
  keyword st "when";
  let guard = pred st in
  expect st Lexer.ARROW "'->'";
  let target = ident st "a target name" in
  (name, guard, target)

let process st =
  keyword st "process";
  let name = ident st "a process name" in
  expect st Lexer.LBRACE "'{'";
  let modes = ref [] and rules = ref [] in
  let rec go () =
    if (peek st).Lexer.token = Lexer.RBRACE then advance st
    else begin
      (if looking_at st "mode" then begin
         advance st;
         let mode_name = ident st "a mode name" in
         modes := mode_body st mode_name :: !modes
       end
       else if looking_at st "rule" then rules := activation_rule st :: !rules
       else
         let t = peek st in
         error t "expected 'mode' or 'rule', found %a" Lexer.pp_token t.Lexer.token);
      go ()
    end
  in
  go ();
  let activation =
    match !rules with
    | [] -> None
    | rules ->
      Some
        (Spi.Activation.make
           (List.rev_map
              (fun (rname, guard, target) ->
                Spi.Activation.rule (I.Rule_id.of_string rname) ~guard
                  ~mode:(I.Mode_id.of_string target))
              rules))
  in
  Spi.Process.make ?activation ~modes:(List.rev !modes)
    (I.Process_id.of_string name)

(* --------------------------- sites / system ------------------------- *)

type item =
  | Item_channel of Spi.Chan.t
  | Item_process of Spi.Process.t
  | Item_site of V.Structure.site
  | Item_constraint of Spi.Constraint_.t

let deadline st =
  keyword st "deadline";
  let name = ident st "a constraint name" in
  keyword st "from";
  let from_ = ident st "a process name" in
  keyword st "to";
  let to_ = ident st "a process name" in
  keyword st "within";
  let bound = int_lit st "a latency bound" in
  Spi.Constraint_.latency_path ~name
    ~from_:(I.Process_id.of_string from_)
    ~to_:(I.Process_id.of_string to_)
    ~bound

let rec items st =
  let rec go acc =
    if looking_at st "channel" then go (Item_channel (channel st) :: acc)
    else if looking_at st "process" then go (Item_process (process st) :: acc)
    else if looking_at st "interface" then go (Item_site (site st) :: acc)
    else if looking_at st "deadline" then go (Item_constraint (deadline st) :: acc)
    else List.rev acc
  in
  go []

and site st =
  keyword st "interface";
  let name = ident st "an interface name" in
  expect st Lexer.LBRACE "'{'";
  let ports = ref [] and wiring = ref [] in
  while looking_at st "port" do
    advance st;
    let dir = ident st "'in' or 'out'" in
    let pname = ident st "a port name" in
    expect st Lexer.EQUALS "'='";
    let host = ident st "a host channel name" in
    let port =
      match dir with
      | "in" -> V.Port.input pname
      | "out" -> V.Port.output pname
      | other -> invalid_arg (Format.sprintf "interface %s: bad direction %s" name other)
    in
    ports := port :: !ports;
    wiring := (V.Port.id port, I.Channel_id.of_string host) :: !wiring
  done;
  let ports = List.rev !ports and wiring = List.rev !wiring in
  let clusters = ref [] in
  while looking_at st "cluster" do
    advance st;
    let cname = ident st "a cluster name" in
    expect st Lexer.LBRACE "'{'";
    let body = items st in
    expect st Lexer.RBRACE "'}'";
    let channels =
      List.filter_map (function Item_channel c -> Some c | _ -> None) body
    in
    let processes =
      List.filter_map (function Item_process p -> Some p | _ -> None) body
    in
    let sub_sites =
      List.filter_map (function Item_site s -> Some s | _ -> None) body
    in
    (match
       List.find_opt (function Item_constraint _ -> true | _ -> false) body
     with
    | Some _ -> invalid_arg (Format.sprintf "cluster %s: deadlines belong at the system level" cname)
    | None -> ());
    clusters := V.Cluster.make ~channels ~sub_sites ~ports ~processes cname :: !clusters
  done;
  let selection =
    if looking_at st "selection" then begin
      advance st;
      expect st Lexer.LBRACE "'{'";
      let rules = ref [] and latencies = ref [] and init = ref None in
      let rec go () =
        if (peek st).Lexer.token = Lexer.RBRACE then advance st
        else begin
          (if looking_at st "rule" then begin
             let rname, guard, target = activation_rule st in
             rules :=
               V.Selection.rule rname ~guard
                 ~target:(I.Cluster_id.of_string target)
               :: !rules
           end
           else if looking_at st "latency" then begin
             advance st;
             let cluster = ident st "a cluster name" in
             let latency = int_lit st "a configuration latency" in
             latencies := (I.Cluster_id.of_string cluster, latency) :: !latencies
           end
           else if looking_at st "initial" then begin
             advance st;
             init := Some (I.Cluster_id.of_string (ident st "a cluster name"))
           end
           else
             let t = peek st in
             error t "expected a selection item, found %a" Lexer.pp_token
               t.Lexer.token);
          go ()
        end
      in
      go ();
      Some
        (V.Selection.make
           ~config_latencies:(List.rev !latencies)
           ?initial:!init (List.rev !rules))
    end
    else None
  in
  expect st Lexer.RBRACE "'}'";
  let iface =
    V.Interface.make ?selection ~ports ~clusters:(List.rev !clusters) name
  in
  { V.Structure.iface; wiring }

let m_parses = Obs.Registry.counter "lang.parses"

let system_of_string input =
  Obs.Registry.with_span "lang.parse_ns" (fun () ->
      Obs.Metric.incr m_parses;
      let tokens =
        Obs.Registry.with_span "lang.lex_ns" (fun () ->
            try Lexer.tokenize input
            with Lexer.Lex_error { line; col; message } ->
              raise (Parse_error { line; col; message }))
      in
      let st = { tokens } in
      keyword st "system";
      let name = ident st "a system name" in
      expect st Lexer.LBRACE "'{'";
      let body = items st in
      expect st Lexer.RBRACE "'}'";
      let t = peek st in
      (match t.Lexer.token with
      | Lexer.EOF -> ()
      | tok -> error t "trailing input: %a" Lexer.pp_token tok);
      let channels =
        List.filter_map (function Item_channel c -> Some c | _ -> None) body
      in
      let processes =
        List.filter_map (function Item_process p -> Some p | _ -> None) body
      in
      let sites =
        List.filter_map (function Item_site s -> Some s | _ -> None) body
      in
      let constraints =
        List.filter_map (function Item_constraint c -> Some c | _ -> None) body
      in
      (* elaboration: turning the parse into checked model structures is
         where construction invariants run; timed separately so a slow
         load can be attributed to syntax or to semantics *)
      Obs.Registry.with_span "lang.elaborate_ns" (fun () ->
          V.System.make ~processes ~channels ~sites ~constraints name))

let system_of_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  system_of_string contents
