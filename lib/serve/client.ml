module J = Obs.Json
module P = Protocol

let m_attempts = Obs.Registry.counter "client.attempts"
let m_retries = Obs.Registry.counter "client.retries"
let m_overloaded = Obs.Registry.counter "client.overloaded_rejections"
let m_unreachable = Obs.Registry.counter "client.unreachable"

type outcome =
  | Response of J.t
  | Overloaded of J.t
  | Unreachable of string

let id_counter = Atomic.make 0

let fresh_id () =
  Printf.sprintf "req-%d-%d-%d" (Unix.getpid ())
    (Obs.Clock.now_ns () land 0xffffff)
    (Atomic.fetch_and_add id_counter 1)

(* xorshift jitter in [0.5, 1.5): deterministic per seed, so tests can
   pin the retry schedule while production spreads thundering herds. *)
let jitter state =
  let x = !state in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 17) in
  let x = x lxor (x lsl 5) in
  state := x;
  0.5 +. (float_of_int (x land 0xffff) /. 65536.)

(* One attempt: connect, send the line, read one response line.  The
   socket timeout covers each blocking syscall; the deadline check on
   top bounds the whole attempt. *)
let attempt ~timeout_s ~socket line =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      try
        Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout_s;
        Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout_s;
        Unix.connect fd (Unix.ADDR_UNIX socket);
        let b = Bytes.of_string (line ^ "\n") in
        let n = Bytes.length b in
        let rec send o = if o < n then send (o + Unix.write fd b o (n - o)) in
        send 0;
        let deadline = Obs.Clock.now_ns () + int_of_float (timeout_s *. 1e9) in
        let buf = Buffer.create 512 in
        let chunk = Bytes.create 4096 in
        let rec recv () =
          if Obs.Clock.now_ns () > deadline then Error "response timeout"
          else
            match Unix.read fd chunk 0 (Bytes.length chunk) with
            | 0 ->
              Error "connection closed before a complete response"
            | n ->
              Buffer.add_subbytes buf chunk 0 n;
              if Bytes.index_opt (Bytes.sub chunk 0 n) '\n' <> None then begin
                match String.index_opt (Buffer.contents buf) '\n' with
                | Some nl -> Ok (String.sub (Buffer.contents buf) 0 nl)
                | None -> recv ()
              end
              else recv ()
        in
        recv ()
      with
      | Unix.Unix_error (e, fn, _) ->
        Error (Printf.sprintf "%s: %s" fn (Unix.error_message e)))

let retry_after_hint json =
  match Option.bind (J.member "retry_after_ms" json) J.to_int with
  | Some ms when ms > 0 -> Some (float_of_int ms /. 1000.)
  | Some _ | None -> None

(* The daemon's retry_after_ms is advice, not a contract: a buggy or
   hostile server must not be able to park the client for an hour.  Both
   the exponential term and the hint are clamped to [max_backoff_s]
   before jitter scales the result, so the delay never exceeds
   1.5 * max_backoff_s. *)
let backoff_delay ~base_backoff_s ~max_backoff_s ~jitter ~attempt hint =
  let d = base_backoff_s *. (2. ** float_of_int attempt) in
  let d = match hint with Some h -> Float.max d h | None -> d in
  Float.min d max_backoff_s *. jitter

let request ?(timeout_s = 10.) ?(attempts = 5) ?(base_backoff_s = 0.05)
    ?(max_backoff_s = 5.) ?seed ~socket (r : P.request) =
  let r =
    match r.P.id with
    | Some _ -> r
    | None -> { r with P.id = Some (fresh_id ()) }
  in
  let line = J.to_string ~minify:true (P.request_to_json r) in
  let rng = ref (match seed with Some s -> s lor 1 | None -> Unix.getpid () lor 1) in
  (* Retries are never silent: each one is a structured [client.retry]
     warning carrying the attempt number, the delay about to be slept
     and the idempotency key, so a stalled pipeline shows *why* in the
     log stream rather than just hanging (the [client.retries] counter
     gives the aggregate). *)
  let backoff k hint ~reason =
    let delay =
      backoff_delay ~base_backoff_s ~max_backoff_s ~jitter:(jitter rng)
        ~attempt:k hint
    in
    Obs.Log.emit ~level:Obs.Log.Warn "client.retry"
      [
        ("id", J.String (Option.value ~default:"" r.P.id));
        ("attempt", J.Int (k + 1));
        ("of", J.Int attempts);
        ("backoff_ms", J.Int (int_of_float (delay *. 1000.)));
        ("reason", J.String reason);
      ];
    Unix.sleepf delay
  in
  let rec go k last =
    if k >= attempts then
      match last with
      | Some (`Overloaded json) ->
        Obs.Metric.incr m_unreachable;
        Overloaded json
      | Some (`Failed why) ->
        Obs.Metric.incr m_unreachable;
        Unreachable why
      | None -> Unreachable "no attempts made"
    else begin
      if k > 0 then Obs.Metric.incr m_retries;
      Obs.Metric.incr m_attempts;
      match attempt ~timeout_s ~socket line with
      | Error why ->
        backoff k None ~reason:why;
        go (k + 1) (Some (`Failed why))
      | Ok response_line -> (
        match J.parse response_line with
        | Error e ->
          let why = Printf.sprintf "bad response: %s" e in
          backoff k None ~reason:why;
          go (k + 1) (Some (`Failed why))
        | Ok json -> (
          match P.status_of_response json with
          | "overloaded" ->
            Obs.Metric.incr m_overloaded;
            backoff k (retry_after_hint json) ~reason:"overloaded";
            go (k + 1) (Some (`Overloaded json))
          | _ -> Response json))
    end
  in
  go 0 None
