module J = Obs.Json
module P = Protocol
module V = Variants

let m_requests = Obs.Registry.counter "serve.requests"
let m_errors = Obs.Registry.counter "serve.request_errors"
let m_cache_replays = Obs.Registry.counter "serve.idempotent_replays"
let m_synth_warm = Obs.Registry.histogram "serve.synthesize_warm_ns"
let m_synth_cold = Obs.Registry.histogram "serve.synthesize_cold_ns"
let m_plan_hits = Obs.Registry.counter "serve.plan_cache_hits"
let m_plan_misses = Obs.Registry.counter "serve.plan_cache_misses"
let m_request_ns = Obs.Registry.histogram "serve.request_ns"

(* Idempotency: a bounded last-N map.  Entries are evicted FIFO — the
   cache covers the retry window of a flaky client, not history. *)
let cache_limit = 1024

(* Compiled plans are closures over the model, so unlike Bound_store
   they cannot persist in the journal; the cache warms in-memory across
   requests instead, keyed by the same Canonical digest
   (Sim.Compile.plan_key) a persistent store would use.  Bounded FIFO:
   a daemon serving many distinct models must not grow without limit. *)
let plan_cache_limit = 64

type t = {
  store : Store.Keyed.t option;
  default_deadline_ms : int option;
  jobs : int;
  cache : (string, J.t) Hashtbl.t;
  cache_order : string Queue.t;
  plans : (string, Sim.Compile.plan) Hashtbl.t;
  plan_order : string Queue.t;
  fplans : (string, Sim.Family_compiled.plan) Hashtbl.t;
  fplan_order : string Queue.t;
  plan_lock : Mutex.t;
  series : Obs.Series.t option;
  on_trace : (Obs.Rtrace.t -> unit) option;
  mutable rid_seq : int;
  mutable shutdown : bool;
}

let create ?store ?default_deadline_ms ?series ?on_trace ~jobs () =
  {
    store;
    default_deadline_ms;
    jobs;
    cache = Hashtbl.create 64;
    cache_order = Queue.create ();
    plans = Hashtbl.create 16;
    plan_order = Queue.create ();
    fplans = Hashtbl.create 16;
    fplan_order = Queue.create ();
    plan_lock = Mutex.create ();
    series;
    on_trace;
    rid_seq = 0;
    shutdown = false;
  }

let shutdown_requested t = t.shutdown
let store t = t.store

let cache_put t id response =
  if not (Hashtbl.mem t.cache id) then begin
    if Queue.length t.cache_order >= cache_limit then
      Hashtbl.remove t.cache (Queue.pop t.cache_order);
    Queue.push id t.cache_order;
    Hashtbl.add t.cache id response
  end

(* Batch items run on pool domains, so the plan caches are
   mutex-guarded; compilation happens outside the lock (two racing
   misses both compile — plans are immutable and equal, so
   last-put-wins is harmless).  Per-configuration and family plans live
   in separate tables because their keys come from different digests,
   but they share the lock and the FIFO discipline. *)
let cached_plan t ~table ~order ~key ~compile =
  let cached =
    Mutex.lock t.plan_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.plan_lock)
      (fun () -> Hashtbl.find_opt table key)
  in
  match cached with
  | Some plan ->
    Obs.Metric.incr m_plan_hits;
    plan
  | None ->
    Obs.Metric.incr m_plan_misses;
    Obs.Log.emit ~level:Obs.Log.Debug "serve.plan_compile"
      [ ("key", J.String key) ];
    let plan = compile () in
    Mutex.lock t.plan_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.plan_lock)
      (fun () ->
        if not (Hashtbl.mem table key) then begin
          if Queue.length order >= plan_cache_limit then
            Hashtbl.remove table (Queue.pop order);
          Queue.push key order;
          Hashtbl.add table key plan
        end);
    plan

let plan_for t model =
  cached_plan t ~table:t.plans ~order:t.plan_order
    ~key:(Sim.Compile.plan_key model)
    ~compile:(fun () -> Sim.Compile.compile model)

let family_plan_for t system =
  cached_plan t ~table:t.fplans ~order:t.fplan_order
    ~key:(Sim.Family_compiled.plan_key system)
    ~compile:(fun () -> Sim.Family_compiled.plan system)

(* -- model/tech loading ------------------------------------------------ *)

let load_system source =
  match Lang.Parser.system_of_string source with
  | exception Lang.Parser.Parse_error { line; col; message } ->
    Error (Printf.sprintf "model:%d:%d: %s" line col message)
  | exception Invalid_argument m -> Error (Printf.sprintf "model: %s" m)
  | system -> (
    match V.System.validate system with
    | [] -> Ok system
    | errors ->
      Error
        (String.concat "; "
           (List.map (Format.asprintf "%a" V.System.pp_error) errors)))

let load_tech source =
  match Lang.Tech_file.of_string source with
  | exception Lang.Parser.Parse_error { line; col; message } ->
    Error (Printf.sprintf "tech:%d:%d: %s" line col message)
  | exception Invalid_argument m -> Error (Printf.sprintf "tech: %s" m)
  | tech -> Ok tech

let binding_json = Synth.Bound_store.binding_to_json

let cost_json (c : Synth.Cost.breakdown) =
  J.Obj
    [
      ("total", J.Int c.Synth.Cost.total);
      ("processor", J.Int c.Synth.Cost.processor);
      ( "asics",
        J.List
          (List.map
             (fun (pid, area) ->
               J.List
                 [ J.String (Spi.Ids.Process_id.to_string pid); J.Int area ])
             c.Synth.Cost.asics) );
    ]

(* -- operations -------------------------------------------------------- *)

(* Each runner returns the response plus deferred store commits: batch
   items execute on pool domains, and the journal is single-writer, so
   writes are replayed on the calling domain once the pool has joined. *)

let synthesize t ~deadline_ns ~jobs ~id ~model ~tech ~capacity =
  match (load_system model, load_tech tech) with
  | Error e, _ | _, Error e -> (P.error ?id e, [])
  | Ok system, Ok tech -> (
    let apps = Synth.App.of_system system in
    let warm =
      Option.bind t.store (fun st ->
          Synth.Bound_store.warm_binding ?capacity st tech apps)
    in
    let t0 = Obs.Clock.now_ns () in
    match
      Synth.Explore.solve ~jobs ?capacity ?deadline_ns ?warm tech apps
    with
    | exception Not_found ->
      (P.error ?id "technology library misses an application process", [])
    | Error d ->
      (P.error ?id (Format.asprintf "%a" Synth.Explore.pp_diagnostic d), [])
    | Ok s ->
      Obs.Metric.observe
        (if Option.is_some warm then m_synth_warm else m_synth_cold)
        (Obs.Clock.elapsed_ns t0);
      let response =
        P.ok ?id
          [
            ("op", J.String "synthesize");
            ("degraded", J.Bool s.Synth.Explore.degraded);
            ("warm", J.Bool (Option.is_some warm));
            ("cost", cost_json s.Synth.Explore.cost);
            ("binding", binding_json s.Synth.Explore.binding);
            ("worst_load", J.Int s.Synth.Explore.worst_load);
            ("explored", J.Int s.Synth.Explore.explored);
            ("pruned", J.Int s.Synth.Explore.pruned);
          ]
      in
      let commits =
        match t.store with
        | Some st ->
          [ (fun () -> Synth.Bound_store.remember ?capacity st tech apps s) ]
        | None -> []
      in
      (response, commits))

let pareto ~jobs ~id ~model ~tech ~capacity =
  match (load_system model, load_tech tech) with
  | Error e, _ | _, Error e -> (P.error ?id e, [])
  | Ok system, Ok tech -> (
    let apps = Synth.App.of_system system in
    match Synth.Pareto.frontier ~jobs ?capacity tech apps with
    | exception Not_found ->
      (P.error ?id "technology library misses an application process", [])
    | points ->
      ( P.ok ?id
          [
            ("op", J.String "pareto");
            ( "points",
              J.List
                (List.map
                   (fun (p : Synth.Pareto.point) ->
                     J.Obj
                       [
                         ("cost", J.Int p.Synth.Pareto.total_cost);
                         ("worst_load", J.Int p.Synth.Pareto.worst_load);
                         ("binding", binding_json p.Synth.Pareto.binding);
                       ])
                   points) );
          ],
        [] ))

let outcome_json (r : Sim.Engine.result) =
  J.String (Format.asprintf "%a" Sim.Engine.pp_outcome r.Sim.Engine.outcome)

(* One featured pass over the whole variant space.  The response keeps
   the per-configuration shape of the flat path (one entry per run) and
   adds the sharing summary; [compiled] picks the engine, results are
   identical either way. *)
let simulate_family t ~id ~jobs ~limits ~compiled system =
  match
    if compiled then
      Sim.Family_compiled.run ~limits ~jobs (family_plan_for t system)
    else Sim.Family.run ~limits ~jobs system
  with
  | exception Invalid_argument m -> (P.error ?id m, [])
  | report ->
    let runs =
      Array.to_list report.Sim.Family.runs
      |> List.map (fun (cr : Sim.Family.config_run) ->
             J.Obj
               [
                 ("configuration", J.Int cr.Sim.Family.index);
                 ( "assignment",
                   J.String
                     (Format.asprintf "%a" V.Variant_space.pp_assignment
                        cr.Sim.Family.assignment) );
                 ("end_time", J.Int cr.Sim.Family.result.Sim.Engine.end_time);
                 ("firings", J.Int cr.Sim.Family.result.Sim.Engine.firings);
                 ("outcome", outcome_json cr.Sim.Family.result);
               ])
    in
    ( P.ok ?id
        [
          ("op", J.String "simulate");
          ("compiled", J.Bool compiled);
          ("family", J.Bool true);
          ("configurations", J.Int (Array.length report.Sim.Family.runs));
          ("splits", J.Int report.Sim.Family.splits);
          ("subfamilies", J.Int report.Sim.Family.subfamilies);
          ("executed_firings", J.Int report.Sim.Family.executed_firings);
          ("shared_firings", J.Int report.Sim.Family.shared_firings);
          ("runs", J.List runs);
        ],
      [] )

let simulate t ~id ~jobs ~model ~until ~compiled ~family =
  match load_system model with
  | Error e -> (P.error ?id e, [])
  | Ok system when family ->
    let limits =
      match until with
      | None -> Sim.Engine.default_limits
      | Some max_time -> { Sim.Engine.default_limits with max_time }
    in
    simulate_family t ~id ~jobs ~limits ~compiled system
  | Ok system -> (
    match V.Flatten.applications system with
    | exception Invalid_argument m -> (P.error ?id m, [])
    | models ->
      let limits =
        match until with
        | None -> Sim.Engine.default_limits
        | Some max_time -> { Sim.Engine.default_limits with max_time }
      in
      let runs =
        List.map
          (fun (clusters, model) ->
            let name =
              String.concat "+"
                (List.map Spi.Ids.Cluster_id.to_string clusters)
            in
            let r =
              if compiled then Sim.Compile.run ~limits (plan_for t model)
              else Sim.Engine.run ~limits model
            in
            J.Obj
              [
                ("application", J.String name);
                ("end_time", J.Int r.Sim.Engine.end_time);
                ("firings", J.Int r.Sim.Engine.firings);
                ("outcome", outcome_json r);
              ])
          models
      in
      ( P.ok ?id
          [
            ("op", J.String "simulate");
            ("compiled", J.Bool compiled);
            ("runs", J.List runs);
          ],
        [] ))

(* -- dispatch ---------------------------------------------------------- *)

let deadline_of t ~admitted_ns (r : P.request) =
  match
    (match r.P.deadline_ms with Some _ as d -> d | None -> t.default_deadline_ms)
  with
  | None -> None
  | Some ms -> Some (admitted_ns + (ms * 1_000_000))

let rec run_op t ~admitted_ns ~queue_depth ~jobs (r : P.request) =
  let id = r.P.id in
  let deadline_ns = deadline_of t ~admitted_ns r in
  let jobs = match r.P.jobs with Some j when j > 0 -> j | Some _ | None -> jobs in
  match r.P.op with
  | P.Ping -> (P.ok ?id [ ("op", J.String "ping") ], [])
  | P.Metrics ->
    (* telemetry read-out: never touches the pool or the store, so it
       stays cheap enough to poll mid-batch (spi-variants top does) *)
    ( P.ok ?id
        ([
           ("op", J.String "metrics");
           ("snapshot", Obs.Registry.snapshot ());
           ("exposition", J.String (Obs.Expo.render ()));
         ]
        @
        match t.series with
        | Some s -> [ ("series", Obs.Series.to_json s) ]
        | None -> []),
      [] )
  | P.Stats ->
    ( P.ok ?id
        [
          ("op", J.String "stats");
          ("queue_depth", J.Int queue_depth);
          ( "store_records",
            J.Int (match t.store with Some s -> Store.Keyed.size s | None -> 0)
          );
          ("store", J.Bool (Option.is_some t.store));
          ("jobs", J.Int t.jobs);
        ],
      [] )
  | P.Shutdown ->
    t.shutdown <- true;
    (P.ok ?id [ ("op", J.String "shutdown"); ("draining", J.Bool true) ], [])
  | P.Synthesize { model; tech; capacity } ->
    synthesize t ~deadline_ns ~jobs ~id ~model ~tech ~capacity
  | P.Pareto { model; tech; capacity } ->
    pareto ~jobs ~id ~model ~tech ~capacity
  | P.Simulate { model; until; compiled; family } ->
    simulate t ~id ~jobs ~model ~until ~compiled ~family
  | P.Batch items ->
    (* fan the items out on the pool, one domain each; the store stays
       read-only until the joined commits run below *)
    let results =
      Synth.Par.map ~jobs:(min t.jobs (max 1 (List.length items)))
        (fun item -> run_op t ~admitted_ns ~queue_depth ~jobs:1 item)
        (Array.of_list items)
    in
    let commits =
      Array.to_list results |> List.concat_map (fun (_, commits) -> commits)
    in
    ( P.ok ?id
        [
          ("op", J.String "batch");
          ("results", J.List (Array.to_list (Array.map fst results)));
        ],
      commits )

let fresh_rid t =
  t.rid_seq <- t.rid_seq + 1;
  Printf.sprintf "req-%d" t.rid_seq

let is_degraded response =
  match J.member "degraded" response with Some (J.Bool true) -> true | _ -> false

let handle t ~admitted_ns ~queue_depth (r : P.request) =
  Obs.Metric.incr m_requests;
  match r.P.id with
  | Some id when Hashtbl.mem t.cache id ->
    Obs.Metric.incr m_cache_replays;
    Obs.Log.emit ~level:Obs.Log.Debug "serve.idempotent_replay"
      [ ("rid", J.String id) ];
    (match Hashtbl.find t.cache id with
    | J.Obj fields -> J.Obj (("cached", J.Bool true) :: fields)
    | other -> other)
  | id_opt ->
    (* Every request runs under a freshly minted trace: spans recorded
       anywhere below (explore tasks, simulation runs, batch items on
       pool domains) parent into its tree.  The rid threads through
       the response, the structured log stream and the daemon's
       [--trace] timeline, so one identifier joins all three. *)
    let rid = match id_opt with Some i -> i | None -> fresh_rid t in
    let tr = Obs.Rtrace.create rid in
    let t0 = Obs.Clock.now_ns () in
    let response =
      match
        Obs.Rtrace.with_request tr "serve.request" (fun () ->
            run_op t ~admitted_ns ~queue_depth ~jobs:t.jobs r)
      with
      | exception e ->
        Obs.Metric.incr m_errors;
        Obs.Log.emit ~level:Obs.Log.Error "serve.request_failed"
          [ ("rid", J.String rid); ("exn", J.String (Printexc.to_string e)) ];
        P.error ?id:id_opt (Printexc.to_string e)
      | response, commits ->
        List.iter (fun commit -> commit ()) commits;
        let status = P.status_of_response response in
        if String.equal status "error" then Obs.Metric.incr m_errors;
        let dur_ns = Obs.Clock.elapsed_ns t0 in
        Obs.Metric.observe m_request_ns dur_ns;
        (match r.P.op with
        | P.Metrics -> ()  (* polling must not flood the log stream *)
        | _ ->
          Obs.Log.emit "serve.request"
            [
              ("rid", J.String rid);
              ("status", J.String status);
              ("dur_ms", J.Int (dur_ns / 1_000_000));
              ("queue_depth", J.Int queue_depth);
            ]);
        if is_degraded response then
          Obs.Log.emit ~level:Obs.Log.Warn "serve.degraded"
            [ ("rid", J.String rid) ];
        (match id_opt with
        | Some id -> cache_put t id response
        | None -> ());
        response
    in
    (match t.on_trace with Some f -> f tr | None -> ());
    if r.P.trace then
      match response with
      | J.Obj fields -> J.Obj (fields @ [ ("trace", Obs.Rtrace.to_json tr) ])
      | other -> other
    else response
