module J = Obs.Json

let schema = "serve/v1"

type op =
  | Ping
  | Stats
  | Metrics
  | Shutdown
  | Synthesize of { model : string; tech : string; capacity : int option }
  | Pareto of { model : string; tech : string; capacity : int option }
  | Simulate of {
      model : string;
      until : int option;
      compiled : bool;
      family : bool;
    }
  | Batch of request list

and request = {
  id : string option;
  deadline_ms : int option;
  jobs : int option;
  trace : bool;
  op : op;
}

let str_field name json = Option.bind (J.member name json) J.to_string_opt
let int_field name json = Option.bind (J.member name json) J.to_int

let bool_field name json =
  Option.value ~default:false (Option.bind (J.member name json) J.to_bool)

let require_str name json =
  match str_field name json with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "missing or non-string field %S" name)

let ( let* ) = Result.bind

let rec op_of_json ~depth json =
  match str_field "op" json with
  | None -> Error "missing or non-string field \"op\""
  | Some "ping" -> Ok Ping
  | Some "stats" -> Ok Stats
  | Some "metrics" -> Ok Metrics
  | Some "shutdown" -> Ok Shutdown
  | Some "synthesize" ->
    let* model = require_str "model" json in
    let* tech = require_str "tech" json in
    Ok (Synthesize { model; tech; capacity = int_field "capacity" json })
  | Some "pareto" ->
    let* model = require_str "model" json in
    let* tech = require_str "tech" json in
    Ok (Pareto { model; tech; capacity = int_field "capacity" json })
  | Some "simulate" ->
    let* model = require_str "model" json in
    Ok
      (Simulate
         {
           model;
           until = int_field "until" json;
           compiled = bool_field "compiled" json;
           family = bool_field "family" json;
         })
  | Some "batch" ->
    if depth > 0 then Error "nested batch requests are not allowed"
    else (
      match Option.bind (J.member "requests" json) J.to_list with
      | None -> Error "batch without a \"requests\" list"
      | Some items ->
        let* reqs =
          List.fold_left
            (fun acc item ->
              let* acc = acc in
              let* r = request_of_json_at ~depth:(depth + 1) item in
              Ok (r :: acc))
            (Ok []) items
        in
        Ok (Batch (List.rev reqs)))
  | Some other -> Error (Printf.sprintf "unknown op %S" other)

and request_of_json_at ~depth json =
  match json with
  | J.Obj _ -> (
    match str_field "schema" json with
    | Some s when not (String.equal s schema) ->
      Error (Printf.sprintf "unknown schema %S (this daemon speaks %s)" s schema)
    | Some _ | None ->
      let* op = op_of_json ~depth json in
      Ok
        {
          id = str_field "id" json;
          deadline_ms = int_field "deadline_ms" json;
          jobs = int_field "jobs" json;
          trace = bool_field "trace" json;
          op;
        })
  | _ -> Error "request is not a JSON object"

let request_of_json json = request_of_json_at ~depth:0 json

let parse_request line =
  match J.parse line with
  | Error e -> Error (Printf.sprintf "not JSON: %s" e)
  | Ok json -> request_of_json json

let rec request_to_json r =
  let opt name f v rest =
    match v with Some v -> (name, f v) :: rest | None -> rest
  in
  let base =
    opt "id" (fun s -> J.String s) r.id
    @@ opt "deadline_ms" (fun i -> J.Int i) r.deadline_ms
    @@ opt "jobs" (fun i -> J.Int i) r.jobs
    @@ (if r.trace then [ ("trace", J.Bool true) ] else [])
  in
  let op_fields =
    match r.op with
    | Ping -> [ ("op", J.String "ping") ]
    | Stats -> [ ("op", J.String "stats") ]
    | Metrics -> [ ("op", J.String "metrics") ]
    | Shutdown -> [ ("op", J.String "shutdown") ]
    | Synthesize { model; tech; capacity } ->
      [ ("op", J.String "synthesize"); ("model", J.String model);
        ("tech", J.String tech) ]
      @ opt "capacity" (fun i -> J.Int i) capacity []
    | Pareto { model; tech; capacity } ->
      [ ("op", J.String "pareto"); ("model", J.String model);
        ("tech", J.String tech) ]
      @ opt "capacity" (fun i -> J.Int i) capacity []
    | Simulate { model; until; compiled; family } ->
      [ ("op", J.String "simulate"); ("model", J.String model) ]
      @ opt "until" (fun i -> J.Int i) until []
      @ (if compiled then [ ("compiled", J.Bool true) ] else [])
      @ (if family then [ ("family", J.Bool true) ] else [])
    | Batch reqs ->
      [ ("op", J.String "batch");
        ("requests", J.List (List.map request_to_json reqs)) ]
  in
  J.Obj ((("schema", J.String schema) :: op_fields) @ base)

let with_id ?id fields =
  match id with Some i -> ("id", J.String i) :: fields | None -> fields

let ok ?id fields =
  J.Obj
    (("schema", J.String schema)
    :: ("status", J.String "ok")
    :: with_id ?id fields)

let error ?id message =
  J.Obj
    (("schema", J.String schema)
    :: ("status", J.String "error")
    :: with_id ?id [ ("message", J.String message) ])

let overloaded ?id ~queue_depth ~queue_limit ~retry_after_ms () =
  J.Obj
    (("schema", J.String schema)
    :: ("status", J.String "overloaded")
    :: with_id ?id
         [
           ("queue_depth", J.Int queue_depth);
           ("queue_limit", J.Int queue_limit);
           ("retry_after_ms", J.Int retry_after_ms);
         ])

let status_of_response json =
  match str_field "status" json with Some s -> s | None -> "invalid"
