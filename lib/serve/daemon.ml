module J = Obs.Json
module P = Protocol

let m_connections = Obs.Registry.counter "serve.connections"
let m_admitted = Obs.Registry.counter "serve.admitted"
let m_rejections = Obs.Registry.counter "serve.admission_rejections"
let m_bad_lines = Obs.Registry.counter "serve.unparseable_lines"
let m_queue_depth = Obs.Registry.gauge "serve.queue_depth"
let m_queue_wait = Obs.Registry.histogram "serve.queue_wait_ns"
let m_inflight = Obs.Registry.gauge "serve.inflight_requests"

type config = {
  socket_path : string;
  store_path : string option;
  metrics_path : string option;
  trace_path : string option;
  log_path : string option;
  log_level : Obs.Log.level;
  sample_interval_ms : int;
  series_windows : int;
  jobs : int;
  queue_limit : int;
  default_deadline_ms : int option;
  fsync : bool;
}

let default_queue_limit = 64
let default_sample_interval_ms = 1000

(* [--trace] keeps the most recent request trees; enough to inspect an
   incident without growing with uptime. *)
let trace_ring_limit = 128

(* One connected client: a buffered reader (lines can arrive split
   across reads or several per read) and its writable fd. *)
type conn = { fd : Unix.file_descr; buf : Buffer.t }

type pending = {
  p_conn : conn;
  p_request : P.request;
  p_admitted_ns : int;
}

type state = {
  config : config;
  listener : Unix.file_descr;
  handler : Handler.t;
  series : Obs.Series.t option;
  traces : Obs.Rtrace.t Queue.t;
  mutable conns : conn list;
  queue : pending Queue.t;
  mutable last_sample_ns : int;
  mutable draining : bool;
}

let write_line conn json =
  let line = J.to_string ~minify:true json ^ "\n" in
  let b = Bytes.unsafe_of_string line in
  let n = Bytes.length b in
  let rec go o =
    if o < n then go (o + Unix.write conn.fd b o (n - o))
  in
  (* a client that vanished mid-response is its problem, not ours *)
  try go 0 with Unix.Unix_error ((EPIPE | ECONNRESET | EBADF), _, _) -> ()

let drop_conn st conn =
  st.conns <- List.filter (fun c -> c.fd != conn.fd) st.conns;
  (try Unix.close conn.fd with Unix.Unix_error _ -> ())

(* Admission: parse failures answer immediately (they carry no work),
   a full queue sheds load with a structured rejection, everything else
   enqueues with its admission stamp — deadlines start here. *)
let admit st conn line =
  if String.length (String.trim line) = 0 then ()
  else
    match P.parse_request line with
    | Error e ->
      Obs.Metric.incr m_bad_lines;
      write_line conn (P.error e)
    | Ok request ->
      let depth = Queue.length st.queue in
      let rid_fields =
        match request.P.id with
        | Some i -> [ ("rid", J.String i) ]
        | None -> []
      in
      if depth >= st.config.queue_limit then begin
        Obs.Metric.incr m_rejections;
        Obs.Log.emit ~level:Obs.Log.Warn "serve.shed"
          (rid_fields
          @ [
              ("queue_depth", J.Int depth);
              ("queue_limit", J.Int st.config.queue_limit);
            ]);
        write_line conn
          (P.overloaded ?id:request.P.id ~queue_depth:depth
             ~queue_limit:st.config.queue_limit
             ~retry_after_ms:(50 * (1 + depth))
             ())
      end
      else begin
        Obs.Metric.incr m_admitted;
        Obs.Log.emit ~level:Obs.Log.Debug "serve.admitted"
          (rid_fields @ [ ("queue_depth", J.Int (depth + 1)) ]);
        Queue.push
          { p_conn = conn; p_request = request;
            p_admitted_ns = Obs.Clock.now_ns () }
          st.queue;
        Obs.Metric.set m_queue_depth (Queue.length st.queue)
      end

(* Drain every complete line out of the connection buffer. *)
let drain_lines st conn =
  let data = Buffer.contents conn.buf in
  match String.rindex_opt data '\n' with
  | None -> ()
  | Some last ->
    Buffer.clear conn.buf;
    Buffer.add_substring conn.buf data (last + 1)
      (String.length data - last - 1);
    String.split_on_char '\n' (String.sub data 0 last)
    |> List.iter (fun line -> admit st conn line)

let read_chunk_size = 65536

let handle_readable st conn =
  let bytes = Bytes.create read_chunk_size in
  match Unix.read conn.fd bytes 0 read_chunk_size with
  | 0 -> drop_conn st conn
  | n ->
    Buffer.add_subbytes conn.buf bytes 0 n;
    drain_lines st conn
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | exception Unix.Unix_error _ -> drop_conn st conn

let accept_conn st =
  match Unix.accept st.listener with
  | fd, _ ->
    Unix.set_nonblock fd;
    Obs.Metric.incr m_connections;
    st.conns <- { fd; buf = Buffer.create 256 } :: st.conns
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()

let process_one st =
  match Queue.take_opt st.queue with
  | None -> ()
  | Some { p_conn; p_request; p_admitted_ns } ->
    Obs.Metric.set m_queue_depth (Queue.length st.queue);
    Obs.Metric.observe m_queue_wait (Obs.Clock.elapsed_ns p_admitted_ns);
    Obs.Metric.set m_inflight 1;
    let response =
      Fun.protect
        ~finally:(fun () -> Obs.Metric.set m_inflight 0)
        (fun () ->
          Handler.handle st.handler ~admitted_ns:p_admitted_ns
            ~queue_depth:(Queue.length st.queue) p_request)
    in
    write_line p_conn response

(* Periodic registry sampling for the rolling series — runs between
   requests on the event loop, so a disabled ticker ([0]) means the
   telemetry layer contributes literally nothing to request latency. *)
let maybe_sample st =
  match st.series with
  | None -> ()
  | Some series ->
    let now = Obs.Clock.now_ns () in
    if now - st.last_sample_ns >= st.config.sample_interval_ms * 1_000_000
    then begin
      st.last_sample_ns <- now;
      Obs.Series.sample series
    end

let write_traces st path =
  let collection = Obs.Trace_event.create () in
  let sink = Obs.Trace_event.buffer_sink collection in
  let pid = ref 0 in
  Queue.iter
    (fun tr ->
      incr pid;
      Obs.Rtrace.emit_timeline ~pid:!pid tr sink)
    st.traces;
  Obs.Trace_event.to_file path collection

let shutdown_state st =
  (* answer everything already admitted, then flush and leave *)
  while not (Queue.is_empty st.queue) do
    process_one st
  done;
  List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) st.conns;
  (try Unix.close st.listener with Unix.Unix_error _ -> ());
  (try Sys.remove st.config.socket_path with Sys_error _ -> ());
  Option.iter Store.Keyed.close (Handler.store st.handler);
  Option.iter Obs.Registry.to_file st.config.metrics_path;
  Option.iter (write_traces st) st.config.trace_path;
  Obs.Log.emit "serve.stopped"
    [ ("requests", J.Int (Obs.Metric.value m_admitted)) ]

let run config =
  (* a client gone before its response must not kill the daemon *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let stop = ref false in
  let request_stop _ = stop := true in
  (try Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop)
   with Invalid_argument _ -> ());
  (try Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop)
   with Invalid_argument _ -> ());
  Obs.Log.set_level config.log_level;
  Option.iter
    (fun path ->
      let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
      at_exit (fun () -> close_out_noerr oc);
      Obs.Log.set_sink (Some (Obs.Log.channel_sink oc)))
    config.log_path;
  let store =
    Option.map
      (fun path ->
        let store, tail = Store.Keyed.open_store ~fsync:config.fsync path in
        Option.iter
          (fun d ->
            Obs.Log.emit ~level:Obs.Log.Warn "store.recovery"
              [
                ("path", J.String path);
                ( "diagnostic",
                  J.String (Format.asprintf "%a" Variants.Diagnostic.pp d) );
              ];
            Format.eprintf "serve: store recovery: %a@." Variants.Diagnostic.pp
              d)
          tail;
        Obs.Log.emit "store.replayed"
          [ ("path", J.String path);
            ("records", J.Int (Store.Keyed.size store)) ];
        store)
      config.store_path
  in
  let series =
    if config.sample_interval_ms > 0 then
      Some (Obs.Series.create ~windows:config.series_windows ())
    else None
  in
  let traces = Queue.create () in
  let on_trace =
    match config.trace_path with
    | None -> None
    | Some _ ->
      Some
        (fun tr ->
          if Queue.length traces >= trace_ring_limit then
            ignore (Queue.pop traces);
          Queue.push tr traces)
  in
  let handler =
    Handler.create ?store ?default_deadline_ms:config.default_deadline_ms
      ?series ?on_trace ~jobs:config.jobs ()
  in
  (try Sys.remove config.socket_path with Sys_error _ -> ());
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listener (Unix.ADDR_UNIX config.socket_path);
  Unix.listen listener 64;
  Unix.set_nonblock listener;
  let st =
    { config; listener; handler; series; traces; conns = [];
      queue = Queue.create (); last_sample_ns = Obs.Clock.now_ns ();
      draining = false }
  in
  Obs.Log.emit "serve.started"
    [
      ("socket", J.String config.socket_path);
      ("jobs", J.Int config.jobs);
      ("queue_limit", J.Int config.queue_limit);
      ("sample_interval_ms", J.Int config.sample_interval_ms);
    ];
  let rec loop () =
    if !stop || Handler.shutdown_requested st.handler then st.draining <- true;
    if st.draining then shutdown_state st
    else begin
      (* zero timeout while work is queued: poll, execute one request,
         poll again — reads interleave between requests, not inside *)
      let timeout = if Queue.is_empty st.queue then 0.2 else 0.0 in
      let fds = st.listener :: List.map (fun c -> c.fd) st.conns in
      (match Unix.select fds [] [] timeout with
      | readable, _, _ ->
        List.iter
          (fun fd ->
            if fd == st.listener then accept_conn st
            else
              match List.find_opt (fun c -> c.fd == fd) st.conns with
              | Some conn -> handle_readable st conn
              | None -> ())
          readable
      | exception Unix.Unix_error (EINTR, _, _) -> ());
      maybe_sample st;
      process_one st;
      loop ()
    end
  in
  loop ()
