module J = Obs.Json
module P = Protocol

let m_connections = Obs.Registry.counter "serve.connections"
let m_admitted = Obs.Registry.counter "serve.admitted"
let m_rejections = Obs.Registry.counter "serve.admission_rejections"
let m_bad_lines = Obs.Registry.counter "serve.unparseable_lines"
let m_queue_depth = Obs.Registry.gauge "serve.queue_depth"
let m_queue_wait = Obs.Registry.histogram "serve.queue_wait_ns"

type config = {
  socket_path : string;
  store_path : string option;
  metrics_path : string option;
  jobs : int;
  queue_limit : int;
  default_deadline_ms : int option;
  fsync : bool;
}

let default_queue_limit = 64

(* One connected client: a buffered reader (lines can arrive split
   across reads or several per read) and its writable fd. *)
type conn = { fd : Unix.file_descr; buf : Buffer.t }

type pending = {
  p_conn : conn;
  p_request : P.request;
  p_admitted_ns : int;
}

type state = {
  config : config;
  listener : Unix.file_descr;
  handler : Handler.t;
  mutable conns : conn list;
  queue : pending Queue.t;
  mutable draining : bool;
}

let write_line conn json =
  let line = J.to_string ~minify:true json ^ "\n" in
  let b = Bytes.unsafe_of_string line in
  let n = Bytes.length b in
  let rec go o =
    if o < n then go (o + Unix.write conn.fd b o (n - o))
  in
  (* a client that vanished mid-response is its problem, not ours *)
  try go 0 with Unix.Unix_error ((EPIPE | ECONNRESET | EBADF), _, _) -> ()

let drop_conn st conn =
  st.conns <- List.filter (fun c -> c.fd != conn.fd) st.conns;
  (try Unix.close conn.fd with Unix.Unix_error _ -> ())

(* Admission: parse failures answer immediately (they carry no work),
   a full queue sheds load with a structured rejection, everything else
   enqueues with its admission stamp — deadlines start here. *)
let admit st conn line =
  if String.length (String.trim line) = 0 then ()
  else
    match P.parse_request line with
    | Error e ->
      Obs.Metric.incr m_bad_lines;
      write_line conn (P.error e)
    | Ok request ->
      let depth = Queue.length st.queue in
      if depth >= st.config.queue_limit then begin
        Obs.Metric.incr m_rejections;
        write_line conn
          (P.overloaded ?id:request.P.id ~queue_depth:depth
             ~queue_limit:st.config.queue_limit
             ~retry_after_ms:(50 * (1 + depth))
             ())
      end
      else begin
        Obs.Metric.incr m_admitted;
        Queue.push
          { p_conn = conn; p_request = request;
            p_admitted_ns = Obs.Clock.now_ns () }
          st.queue;
        Obs.Metric.set m_queue_depth (Queue.length st.queue)
      end

(* Drain every complete line out of the connection buffer. *)
let drain_lines st conn =
  let data = Buffer.contents conn.buf in
  match String.rindex_opt data '\n' with
  | None -> ()
  | Some last ->
    Buffer.clear conn.buf;
    Buffer.add_substring conn.buf data (last + 1)
      (String.length data - last - 1);
    String.split_on_char '\n' (String.sub data 0 last)
    |> List.iter (fun line -> admit st conn line)

let read_chunk_size = 65536

let handle_readable st conn =
  let bytes = Bytes.create read_chunk_size in
  match Unix.read conn.fd bytes 0 read_chunk_size with
  | 0 -> drop_conn st conn
  | n ->
    Buffer.add_subbytes conn.buf bytes 0 n;
    drain_lines st conn
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | exception Unix.Unix_error _ -> drop_conn st conn

let accept_conn st =
  match Unix.accept st.listener with
  | fd, _ ->
    Unix.set_nonblock fd;
    Obs.Metric.incr m_connections;
    st.conns <- { fd; buf = Buffer.create 256 } :: st.conns
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()

let process_one st =
  match Queue.take_opt st.queue with
  | None -> ()
  | Some { p_conn; p_request; p_admitted_ns } ->
    Obs.Metric.set m_queue_depth (Queue.length st.queue);
    Obs.Metric.observe m_queue_wait (Obs.Clock.elapsed_ns p_admitted_ns);
    let response =
      Handler.handle st.handler ~admitted_ns:p_admitted_ns
        ~queue_depth:(Queue.length st.queue) p_request
    in
    write_line p_conn response

let shutdown_state st =
  (* answer everything already admitted, then flush and leave *)
  while not (Queue.is_empty st.queue) do
    process_one st
  done;
  List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) st.conns;
  (try Unix.close st.listener with Unix.Unix_error _ -> ());
  (try Sys.remove st.config.socket_path with Sys_error _ -> ());
  Option.iter Store.Keyed.close (Handler.store st.handler);
  Option.iter Obs.Registry.to_file st.config.metrics_path

let run config =
  (* a client gone before its response must not kill the daemon *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let stop = ref false in
  let request_stop _ = stop := true in
  (try Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop)
   with Invalid_argument _ -> ());
  (try Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop)
   with Invalid_argument _ -> ());
  let store =
    Option.map
      (fun path ->
        let store, tail = Store.Keyed.open_store ~fsync:config.fsync path in
        Option.iter
          (fun d ->
            Format.eprintf "serve: store recovery: %a@." Variants.Diagnostic.pp
              d)
          tail;
        store)
      config.store_path
  in
  let handler =
    Handler.create ?store ?default_deadline_ms:config.default_deadline_ms
      ~jobs:config.jobs ()
  in
  (try Sys.remove config.socket_path with Sys_error _ -> ());
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listener (Unix.ADDR_UNIX config.socket_path);
  Unix.listen listener 64;
  Unix.set_nonblock listener;
  let st =
    { config; listener; handler; conns = []; queue = Queue.create ();
      draining = false }
  in
  let rec loop () =
    if !stop || Handler.shutdown_requested st.handler then st.draining <- true;
    if st.draining then shutdown_state st
    else begin
      (* zero timeout while work is queued: poll, execute one request,
         poll again — reads interleave between requests, not inside *)
      let timeout = if Queue.is_empty st.queue then 0.2 else 0.0 in
      let fds = st.listener :: List.map (fun c -> c.fd) st.conns in
      (match Unix.select fds [] [] timeout with
      | readable, _, _ ->
        List.iter
          (fun fd ->
            if fd == st.listener then accept_conn st
            else
              match List.find_opt (fun c -> c.fd == fd) st.conns with
              | Some conn -> handle_readable st conn
              | None -> ())
          readable
      | exception Unix.Unix_error (EINTR, _, _) -> ());
      process_one st;
      loop ()
    end
  in
  loop ()
