(** Request execution for the daemon, socket-free for testability.

    A handler owns the exploration store, the idempotency cache and the
    default limits; {!handle} turns one admitted request into one
    response.  Batch sub-requests run on the work-stealing pool
    ({!Synth.Par.map}) with one domain each; store writes are collected
    as deferred commits and applied on the calling domain afterwards, so
    the journal and the caches stay single-writer. *)

type t

val create :
  ?store:Store.Keyed.t ->
  ?default_deadline_ms:int ->
  ?series:Obs.Series.t ->
  ?on_trace:(Obs.Rtrace.t -> unit) ->
  jobs:int ->
  unit ->
  t
(** [series] is returned by the [metrics] verb next to the snapshot and
    exposition; [on_trace] receives every completed request's span tree
    (the daemon's [--trace] export hooks in here). *)

val handle : t -> admitted_ns:int -> queue_depth:int -> Protocol.request ->
  Obs.Json.t
(** Executes the request; deadlines are absolute from [admitted_ns], so
    time spent queued counts against the budget.  Never raises: every
    failure becomes a [status = "error"] response.

    Each non-replayed request runs under a fresh {!Obs.Rtrace} whose rid
    is the request id (or a generated [req-N]); when the request carries
    [trace = true] the response gains a ["trace"] field with the
    [rtrace/v1] span tree.  Completion, degradation and failure are
    logged through {!Obs.Log} under the same rid. *)

val shutdown_requested : t -> bool
(** Set once a [shutdown] request has been handled. *)

val store : t -> Store.Keyed.t option
