(** The [spi_variants serve] daemon.

    A single-threaded event loop over a Unix-domain stream socket:
    connections are accepted and read without blocking, complete lines
    pass admission control into a bounded request queue, and one queued
    request executes at a time (requests themselves fan out on the
    domain pool).  Admission is load-shedding: when the queue is full
    the request is answered immediately with a structured [overloaded]
    rejection carrying the observed depth and a retry hint, and nothing
    is enqueued.

    Shutdown is graceful on SIGTERM, SIGINT, or a [shutdown] request:
    the listener closes (new connections are refused by the kernel),
    queued requests drain and get their responses, the store and the
    optional metrics snapshot are flushed, and the loop returns.  A
    [kill -9] is the crash the store's journal is designed for: at most
    the record being written is lost, and the next start replays the
    rest (see {!Store.Journal}). *)

type config = {
  socket_path : string;
  store_path : string option;  (** exploration journal; [None] disables *)
  metrics_path : string option;  (** obs/v1 snapshot written on shutdown *)
  trace_path : string option;
      (** [trace/v1] timeline of the most recent request span trees
          (one pid per request), written on shutdown *)
  log_path : string option;
      (** structured [log/v1] stream destination (append);
          [None] keeps the stderr sink *)
  log_level : Obs.Log.level;  (** log threshold (daemon default: Info) *)
  sample_interval_ms : int;
      (** series ticker period; [0] disables sampling entirely *)
  series_windows : int;  (** samples retained for rolling rates *)
  jobs : int;  (** domain count for request execution *)
  queue_limit : int;  (** admission bound: queued requests beyond
                          the one executing *)
  default_deadline_ms : int option;  (** applied when a request carries
                                         no deadline of its own *)
  fsync : bool;  (** fsync the journal on every commit (default on) *)
}

val default_queue_limit : int
val default_sample_interval_ms : int

val run : config -> unit
(** Binds, serves, and blocks until shutdown.  Removes a pre-existing
    socket file at [socket_path] (stale from a previous crash) before
    binding.
    @raise Unix.Unix_error when the socket cannot be bound. *)
