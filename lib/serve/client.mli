(** Resilient client for the [serve/v1] daemon.

    One call = one request with a timeout, bounded exponential backoff
    with deterministic jitter, and an idempotency key: retries resend
    the same key, so a request whose response was lost in transit is
    replayed from the daemon's cache instead of recomputed.  An
    [overloaded] rejection waits at least the daemon's [retry_after_ms]
    hint before the next attempt — but never longer than the client's
    own backoff ceiling: the hint is advice, and a buggy daemon must not
    be able to park a client indefinitely. *)

type outcome =
  | Response of Obs.Json.t
      (** any [serve/v1] response, including [status = "error"] — the
          daemon answered; interpreting the status is the caller's job *)
  | Overloaded of Obs.Json.t
      (** still shedding load after every attempt; the last rejection *)
  | Unreachable of string
      (** no response within budget: connect/read failures, timeouts *)

val request :
  ?timeout_s:float ->
  ?attempts:int ->
  ?base_backoff_s:float ->
  ?max_backoff_s:float ->
  ?seed:int ->
  socket:string ->
  Protocol.request ->
  outcome
(** [request ~socket r] sends [r] and awaits one response line.
    Defaults: [timeout_s = 10.] per attempt (connect + send + receive),
    [attempts = 5], [base_backoff_s = 0.05] doubled per retry; both the
    exponential delay and the daemon's [retry_after_ms] hint are clamped
    to [max_backoff_s] (default 5 s) before a jitter in [0.5, 1.5)
    derived from [seed] (default: PID — pass a fixed seed for
    reproducible tests) scales the result, so no single wait exceeds
    [1.5 * max_backoff_s].  When [r] carries no [id], a process-unique
    one is generated so retries are idempotent. *)

val fresh_id : unit -> string

val backoff_delay :
  base_backoff_s:float ->
  max_backoff_s:float ->
  jitter:float ->
  attempt:int ->
  float option ->
  float
(** The delay {!request} sleeps before retry [attempt] (0-based) given
    the daemon's optional retry-after hint in seconds:
    [min (max (base * 2^attempt) hint) max_backoff_s * jitter].
    Exposed pure for tests. *)
