(** The [serve/v1] wire protocol.

    Line-delimited JSON over a Unix-domain stream socket: each request
    is one minified JSON object terminated by ["\n"], each response one
    JSON object on one line.  See docs/SERVE.md for the full field
    reference; this module is the single source of truth for parsing
    and encoding, shared by the daemon and the client. *)

type op =
  | Ping
  | Stats
  | Metrics
      (** live telemetry: the [obs/v1] snapshot, the Prometheus text
          exposition and the [series/v1] rolling rates/quantiles in one
          response — see docs/OBSERVABILITY.md *)
  | Shutdown  (** graceful: drain queued work, then exit *)
  | Synthesize of { model : string; tech : string; capacity : int option }
  | Pareto of { model : string; tech : string; capacity : int option }
  | Simulate of {
      model : string;
      until : int option;
      compiled : bool;
      family : bool;
    }
      (** [compiled] (default [false] on the wire) simulates with
          {!Sim.Compile} plans cached daemon-side by
          {!Sim.Compile.plan_key} — identical results, amortized
          specialization across requests for the same model.  [family]
          (default [false]) covers the whole variant space in one
          featured pass ({!Sim.Family}); with [compiled] it runs on
          {!Sim.Family_compiled} plans cached by
          {!Sim.Family_compiled.plan_key} *)
  | Batch of request list
      (** sub-requests run on the work-stealing pool; nesting depth 1 *)

and request = {
  id : string option;
      (** idempotency key: a repeated [id] replays the cached response
          instead of recomputing *)
  deadline_ms : int option;
      (** budget from {e admission}, queue wait included *)
  jobs : int option;  (** overrides the daemon's domain count *)
  trace : bool;
      (** when true (default [false] on the wire), the response carries
          a ["trace"] field: the request's [rtrace/v1] span tree *)
  op : op;
}

val request_of_json : Obs.Json.t -> (request, string) result
(** Validates the schema tag when present and rejects unknown [op]s and
    nested batches with a message suitable for an error response. *)

val request_to_json : request -> Obs.Json.t

val parse_request : string -> (request, string) result
(** One wire line (sans newline) to a request. *)

(** Response construction — every response carries ["schema"] and
    ["status"], plus ["id"] when the request had one. *)

val ok : ?id:string -> (string * Obs.Json.t) list -> Obs.Json.t
(** [status = "ok"]; the fields are appended. *)

val error : ?id:string -> string -> Obs.Json.t
(** [status = "error"] with a ["message"]. *)

val overloaded :
  ?id:string -> queue_depth:int -> queue_limit:int -> retry_after_ms:int ->
  unit -> Obs.Json.t
(** [status = "overloaded"]: the structured load-shed rejection. *)

val status_of_response : Obs.Json.t -> string
(** ["ok"], ["error"], ["overloaded"] — or ["invalid"] when the line is
    not a [serve/v1] response. *)
