module T = Obs.Trace_event
module J = Obs.Json
module Pid = Spi.Ids.Process_id
module Cid = Spi.Ids.Channel_id
module Mid = Spi.Ids.Mode_id
module Config_id = Spi.Ids.Config_id

let env_tid = 0

let queue_of tbl key =
  match Hashtbl.find_opt tbl key with
  | Some q -> q
  | None ->
    let q = Queue.create () in
    Hashtbl.replace tbl key q;
    q

let config_json = function
  | Some c -> J.String (Config_id.to_string c)
  | None -> J.Null

let add ?(pid = 0) ?(name = "simulation") builder model
    (result : Engine.result) =
  T.set_process_name builder ~pid name;
  T.set_thread_name builder ~pid ~tid:env_tid "environment";
  T.set_thread_order builder ~pid ~tid:env_tid 0;
  let tids : (string, int) Hashtbl.t = Hashtbl.create 16 in
  List.iteri
    (fun i p ->
      let tid = i + 1 in
      let key = Pid.to_string (Spi.Process.id p) in
      Hashtbl.replace tids key tid;
      T.set_thread_name builder ~pid ~tid key;
      T.set_thread_order builder ~pid ~tid tid)
    (Spi.Model.processes model);
  let tid_of p =
    Option.value ~default:env_tid (Hashtbl.find_opt tids (Pid.to_string p))
  in
  (* one model time unit = 1 us *)
  let us t = float_of_int t in
  (* Pre-pass: per-process FIFO of completions.  The engine runs a
     process's executions sequentially, so at each [Started] the head of
     its queue is the matching completion; an empty queue means the run
     was truncated mid-execution. *)
  let completions : (string, Trace.entry Queue.t) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun entry ->
      match entry with
      | Trace.Completed { process; _ } ->
        Queue.add entry (queue_of completions (Pid.to_string process))
      | _ -> ())
    result.Engine.trace;
  (* Per-channel FIFO of flow ids: productions push, consumptions pop, so
     arrows respect queue order.  Ids are namespaced by [pid] to keep
     several runs in one file from cross-linking. *)
  let next_flow = ref (pid * 1_000_000) in
  let flows : (string, int Queue.t) Hashtbl.t = Hashtbl.create 16 in
  let depth : (string, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun c ->
      Hashtbl.replace depth
        (Cid.to_string (Spi.Chan.id c))
        (List.length (Spi.Chan.initial c)))
    (Spi.Model.channels model);
  let bump cid delta ts =
    let key = Cid.to_string cid in
    let d = Option.value ~default:0 (Hashtbl.find_opt depth key) + delta in
    Hashtbl.replace depth key (max 0 d);
    T.add builder
      (T.Counter
         {
           name = "queue." ^ key;
           pid;
           ts;
           values = [ ("depth", float_of_int (max 0 d)) ];
         })
  in
  let flow_start ~tid ~ts cid =
    let key = Cid.to_string cid in
    let id = !next_flow in
    incr next_flow;
    Queue.add id (queue_of flows key);
    T.add builder (T.Flow_start { name = "token " ^ key; id; pid; tid; ts })
  in
  let flow_end ~tid ~ts cid =
    match Hashtbl.find_opt flows (Cid.to_string cid) with
    | Some q when not (Queue.is_empty q) ->
      let id = Queue.pop q in
      T.add builder
        (T.Flow_end
           { name = "token " ^ Cid.to_string cid; id; pid; tid; ts })
    | _ -> () (* initial token: no producer to link from *)
  in
  (* current configuration per process, for reconfiguration sources *)
  let confcur : (string, Config_id.t) Hashtbl.t = Hashtbl.create 16 in
  let instant ?(cat = "fault") ?(args = []) ~tid ~ts name =
    T.add builder (T.Instant { name; cat; pid; tid; ts; args })
  in
  List.iter
    (fun entry ->
      match entry with
      | Trace.Injected { time; channel; token = _ } ->
        let ts = us time in
        T.add builder
          (T.Complete
             {
               name = "inject " ^ Cid.to_string channel;
               cat = "inject";
               pid;
               tid = env_tid;
               ts;
               dur = 0.;
               args = [];
             });
        flow_start ~tid:env_tid ~ts channel;
        bump channel 1 ts
      | Trace.Started { time; process; mode; reconfiguration } -> (
        let key = Pid.to_string process in
        let tid = tid_of process in
        let completion =
          match Hashtbl.find_opt completions key with
          | Some q when not (Queue.is_empty q) -> Some (Queue.pop q)
          | _ -> None
        in
        match completion with
        | Some (Trace.Completed { time = done_at; started_at; firing; _ }) ->
          let reconf_lat =
            match reconfiguration with Some (_, l) -> l | None -> 0
          in
          let fire_start = started_at + reconf_lat in
          (match reconfiguration with
          | Some (target, latency) ->
            T.add builder
              (T.Complete
                 {
                   name = "t_conf";
                   cat = "reconf";
                   pid;
                   tid;
                   ts = us started_at;
                   dur = float_of_int latency;
                   args =
                     [
                       ("t_conf", J.Int latency);
                       ("source", config_json (Hashtbl.find_opt confcur key));
                       ("target", config_json (Some target));
                     ];
                 });
            Hashtbl.replace confcur key target
          | None -> ());
          T.add builder
            (T.Complete
               {
                 name = Mid.to_string mode;
                 cat = "firing";
                 pid;
                 tid;
                 ts = us fire_start;
                 dur = float_of_int (done_at - fire_start);
                 args =
                   [
                     ("process", J.String key);
                     ("latency", J.Int (done_at - started_at));
                   ];
               });
          List.iter
            (fun (cid, toks) ->
              List.iter (fun _ -> flow_end ~tid ~ts:(us fire_start) cid) toks;
              if toks <> [] then
                bump cid (-List.length toks) (us fire_start))
            firing.Spi.Semantics.consumed
        | _ ->
          instant ~cat:"firing" ~tid ~ts:(us time)
            ~args:[ ("mode", J.String (Mid.to_string mode)) ]
            "started (truncated)")
      | Trace.Completed { time; process; firing; _ } ->
        let tid = tid_of process in
        List.iter
          (fun (cid, toks) ->
            List.iter (fun _ -> flow_start ~tid ~ts:(us time) cid) toks;
            if toks <> [] then bump cid (List.length toks) (us time))
          firing.Spi.Semantics.produced
      | Trace.Faulted { time; fault } -> (
        let ts = us time in
        let kind = Fault.event_kind fault in
        match fault with
        | Fault.Token_dropped { channel; _ }
        | Fault.Token_corrupted { channel; _ }
        | Fault.Token_duplicated { channel; _ } ->
          instant ~tid:env_tid ~ts
            ~args:[ ("channel", J.String (Cid.to_string channel)) ]
            kind
        | Fault.Transient_failure { process; mode; retry; backoff } ->
          instant ~tid:(tid_of process) ~ts
            ~args:
              [
                ("mode", J.String (Mid.to_string mode));
                ("retry", J.Int retry);
                ("backoff", J.Int backoff);
              ]
            kind
        | Fault.Retries_exhausted { process; mode } ->
          instant ~tid:(tid_of process) ~ts
            ~args:[ ("mode", J.String (Mid.to_string mode)) ]
            kind
        | Fault.Crashed { process } -> instant ~tid:(tid_of process) ~ts kind
        | Fault.Latency_overrun { process; mode; extra } ->
          instant ~tid:(tid_of process) ~ts
            ~args:
              [
                ("mode", J.String (Mid.to_string mode)); ("extra", J.Int extra);
              ]
            kind
        | Fault.Reconfiguration_failed { process; target; latency } ->
          instant ~cat:"reconf" ~tid:(tid_of process) ~ts
            ~args:
              [
                ("target", config_json (Some target));
                ("t_conf", J.Int latency);
              ]
            kind
        | Fault.Degraded { process; from_; to_; latency } ->
          Hashtbl.replace confcur (Pid.to_string process) to_;
          instant ~cat:"degradation" ~tid:(tid_of process) ~ts
            ~args:
              [
                ("source", config_json from_);
                ("target", config_json (Some to_));
                ("t_conf", J.Int latency);
              ]
            kind)
      | Trace.Quiescent { time } ->
        instant ~cat:"sim" ~tid:env_tid ~ts:(us time) "quiescent")
    result.Engine.trace
