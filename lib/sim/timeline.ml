module T = Obs.Trace_event
module J = Obs.Json
module Pid = Spi.Ids.Process_id
module Cid = Spi.Ids.Channel_id
module Mid = Spi.Ids.Mode_id
module Config_id = Spi.Ids.Config_id

let env_tid = 0

let queue_of tbl key =
  match Pid.Tbl.find_opt tbl key with
  | Some q -> q
  | None ->
    let q = Queue.create () in
    Pid.Tbl.replace tbl key q;
    q

let flow_queue_of tbl key =
  match Cid.Tbl.find_opt tbl key with
  | Some q -> q
  | None ->
    let q = Queue.create () in
    Cid.Tbl.replace tbl key q;
    q

let config_json = function
  | Some c -> J.String (Config_id.to_string c)
  | None -> J.Null

let emit ?(pid = 0) ?(name = "simulation") sink model
    (result : Engine.result) =
  T.sink_process_name sink ~pid name;
  T.sink_thread_name sink ~pid ~tid:env_tid "environment";
  T.sink_thread_order sink ~pid ~tid:env_tid 0;
  (* All run-local state is keyed by the id itself — Pid/Cid hash tables
     — so the hot conversion loop never re-renders an id to a string
     just to look something up; strings are built only when they end up
     in the emitted JSON. *)
  let tids : int Pid.Tbl.t = Pid.Tbl.create 16 in
  List.iteri
    (fun i p ->
      let tid = i + 1 in
      let id = Spi.Process.id p in
      Pid.Tbl.replace tids id tid;
      T.sink_thread_name sink ~pid ~tid (Pid.to_string id);
      T.sink_thread_order sink ~pid ~tid tid)
    (Spi.Model.processes model);
  let tid_of p = Option.value ~default:env_tid (Pid.Tbl.find_opt tids p) in
  (* one model time unit = 1 us *)
  let us t = float_of_int t in
  (* Pre-pass: per-process FIFO of completions.  The engine runs a
     process's executions sequentially, so at each [Started] the head of
     its queue is the matching completion; an empty queue means the run
     was truncated mid-execution. *)
  let completions : Trace.entry Queue.t Pid.Tbl.t = Pid.Tbl.create 16 in
  List.iter
    (fun entry ->
      match entry with
      | Trace.Completed { process; _ } ->
        Queue.add entry (queue_of completions process)
      | _ -> ())
    result.Engine.trace;
  (* Per-channel FIFO of flow ids: productions push, consumptions pop, so
     arrows respect queue order.  Ids are namespaced by [pid] to keep
     several runs in one file from cross-linking. *)
  let next_flow = ref (pid * 1_000_000) in
  let flows : int Queue.t Cid.Tbl.t = Cid.Tbl.create 16 in
  let depth : int Cid.Tbl.t = Cid.Tbl.create 16 in
  List.iter
    (fun c ->
      Cid.Tbl.replace depth (Spi.Chan.id c)
        (List.length (Spi.Chan.initial c)))
    (Spi.Model.channels model);
  let bump cid delta ts =
    let d = Option.value ~default:0 (Cid.Tbl.find_opt depth cid) + delta in
    Cid.Tbl.replace depth cid (max 0 d);
    sink.T.event
      (T.Counter
         {
           name = "queue." ^ Cid.to_string cid;
           pid;
           ts;
           values = [ ("depth", float_of_int (max 0 d)) ];
         })
  in
  let flow_start ~tid ~ts cid =
    let id = !next_flow in
    incr next_flow;
    Queue.add id (flow_queue_of flows cid);
    sink.T.event
      (T.Flow_start { name = "token " ^ Cid.to_string cid; id; pid; tid; ts })
  in
  let flow_end ~tid ~ts cid =
    match Cid.Tbl.find_opt flows cid with
    | Some q when not (Queue.is_empty q) ->
      let id = Queue.pop q in
      sink.T.event
        (T.Flow_end { name = "token " ^ Cid.to_string cid; id; pid; tid; ts })
    | _ -> () (* initial token: no producer to link from *)
  in
  (* current configuration per process, for reconfiguration sources *)
  let confcur : Config_id.t Pid.Tbl.t = Pid.Tbl.create 16 in
  let instant ?(cat = "fault") ?(args = []) ~tid ~ts name =
    sink.T.event (T.Instant { name; cat; pid; tid; ts; args })
  in
  List.iter
    (fun entry ->
      match entry with
      | Trace.Injected { time; channel; token = _ } ->
        let ts = us time in
        sink.T.event
          (T.Complete
             {
               name = "inject " ^ Cid.to_string channel;
               cat = "inject";
               pid;
               tid = env_tid;
               ts;
               dur = 0.;
               args = [];
             });
        flow_start ~tid:env_tid ~ts channel;
        bump channel 1 ts
      | Trace.Started { time; process; mode; reconfiguration } -> (
        let tid = tid_of process in
        let completion =
          match Pid.Tbl.find_opt completions process with
          | Some q when not (Queue.is_empty q) -> Some (Queue.pop q)
          | _ -> None
        in
        match completion with
        | Some (Trace.Completed { time = done_at; started_at; firing; _ }) ->
          let reconf_lat =
            match reconfiguration with Some (_, l) -> l | None -> 0
          in
          let fire_start = started_at + reconf_lat in
          (match reconfiguration with
          | Some (target, latency) ->
            sink.T.event
              (T.Complete
                 {
                   name = "t_conf";
                   cat = "reconf";
                   pid;
                   tid;
                   ts = us started_at;
                   dur = float_of_int latency;
                   args =
                     [
                       ("t_conf", J.Int latency);
                       ( "source",
                         config_json (Pid.Tbl.find_opt confcur process) );
                       ("target", config_json (Some target));
                     ];
                 });
            Pid.Tbl.replace confcur process target
          | None -> ());
          sink.T.event
            (T.Complete
               {
                 name = Mid.to_string mode;
                 cat = "firing";
                 pid;
                 tid;
                 ts = us fire_start;
                 dur = float_of_int (done_at - fire_start);
                 args =
                   [
                     ("process", J.String (Pid.to_string process));
                     ("latency", J.Int (done_at - started_at));
                   ];
               });
          List.iter
            (fun (cid, toks) ->
              List.iter (fun _ -> flow_end ~tid ~ts:(us fire_start) cid) toks;
              if toks <> [] then
                bump cid (-List.length toks) (us fire_start))
            firing.Spi.Semantics.consumed
        | _ ->
          instant ~cat:"firing" ~tid ~ts:(us time)
            ~args:[ ("mode", J.String (Mid.to_string mode)) ]
            "started (truncated)")
      | Trace.Completed { time; process; firing; _ } ->
        let tid = tid_of process in
        List.iter
          (fun (cid, toks) ->
            List.iter (fun _ -> flow_start ~tid ~ts:(us time) cid) toks;
            if toks <> [] then bump cid (List.length toks) (us time))
          firing.Spi.Semantics.produced
      | Trace.Faulted { time; fault } -> (
        let ts = us time in
        let kind = Fault.event_kind fault in
        match fault with
        | Fault.Token_dropped { channel; _ }
        | Fault.Token_corrupted { channel; _ }
        | Fault.Token_duplicated { channel; _ } ->
          instant ~tid:env_tid ~ts
            ~args:[ ("channel", J.String (Cid.to_string channel)) ]
            kind
        | Fault.Transient_failure { process; mode; retry; backoff } ->
          instant ~tid:(tid_of process) ~ts
            ~args:
              [
                ("mode", J.String (Mid.to_string mode));
                ("retry", J.Int retry);
                ("backoff", J.Int backoff);
              ]
            kind
        | Fault.Retries_exhausted { process; mode } ->
          instant ~tid:(tid_of process) ~ts
            ~args:[ ("mode", J.String (Mid.to_string mode)) ]
            kind
        | Fault.Crashed { process } -> instant ~tid:(tid_of process) ~ts kind
        | Fault.Latency_overrun { process; mode; extra } ->
          instant ~tid:(tid_of process) ~ts
            ~args:
              [
                ("mode", J.String (Mid.to_string mode)); ("extra", J.Int extra);
              ]
            kind
        | Fault.Reconfiguration_failed { process; target; latency } ->
          instant ~cat:"reconf" ~tid:(tid_of process) ~ts
            ~args:
              [
                ("target", config_json (Some target));
                ("t_conf", J.Int latency);
              ]
            kind
        | Fault.Degraded { process; from_; to_; latency } ->
          Pid.Tbl.replace confcur process to_;
          instant ~cat:"degradation" ~tid:(tid_of process) ~ts
            ~args:
              [
                ("source", config_json from_);
                ("target", config_json (Some to_));
                ("t_conf", J.Int latency);
              ]
            kind)
      | Trace.Quiescent { time } ->
        instant ~cat:"sim" ~tid:env_tid ~ts:(us time) "quiescent")
    result.Engine.trace

let add ?pid ?name builder model result =
  emit ?pid ?name (T.buffer_sink builder) model result
