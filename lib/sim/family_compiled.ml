module I = Spi.Ids
module P = Variants.Presence
open Crt

(* ------------------------------------------------------------------ *)
(* Compiled per-representative tables.                                 *)
(*                                                                     *)
(* A sub-family executes on its representative configuration's         *)
(* flattened model, exactly like the interpreted {!Family} engine —     *)
(* but here the model is lowered to {!Compile}-style flat int tables    *)
(* (no configuration dispatch: family runs reject degradation plans,   *)
(* so modes never carry masks and firings never reconfigure).          *)
(* ------------------------------------------------------------------ *)

type fmode = {
  fm_mid : I.Mode_id.t;
  fm_latency : Interval.t;
  fm_consumes : ccons array;  (* in {!Spi.Mode.consumptions} order *)
  fm_produces : cprod array;  (* in {!Spi.Mode.productions} order *)
  fm_inherit : bool;
}

type fproc = {
  fp_pid : I.Process_id.t;
  fp_source : bool;  (* no input channels: default firing budget 0 *)
  fp_rules : crule array;
  fp_modes : fmode array;
}

type centry = {
  ce_model : Spi.Model.t;
  ce_init : Spi.Semantics.state;
  ce_procs : fproc array;  (* in model process order *)
  ce_chan_ids : I.Channel_id.t array;
  ce_chan_register : bool array;
  ce_chan_cap : int array;  (* -1 = unbounded *)
  ce_chan_initial : Spi.Token.t list array;
  ce_chan_index : int I.Channel_id.Tbl.t;
  ce_proc_tbl : int I.Process_id.Tbl.t;
}

type plan = {
  p_system : Variants.System.t;
  p_space : P.space;
  p_sites : I.Interface_id.t list;
  p_n : int;
  p_key : string;
  p_lock : Mutex.t;
      (* guards the three demand-built caches below: worker domains race
         on first touch *)
  p_models : Spi.Model.t option array;
  p_inits : Spi.Semantics.state option array;
  p_entries : centry option array;
}

(* ------------------------------------------------------------------ *)
(* Observability: the family counters are shared with {!Family} (the   *)
(* registry deduplicates by name), so dashboards see one family        *)
(* workload whichever engine ran it.                                   *)
(* ------------------------------------------------------------------ *)

let m_runs = Obs.Registry.counter "sim.family.runs"
let m_configs = Obs.Registry.counter "sim.family.configs"
let m_splits = Obs.Registry.counter "sim.family.splits"
let m_subfamilies = Obs.Registry.counter "sim.family.subfamilies"
let m_shared_firings = Obs.Registry.counter "sim.family.shared_firings"
let m_configs_per_firing = Obs.Registry.histogram "sim.family.configs_per_firing"
let m_plans = Obs.Registry.counter "sim.family.compiles"
let m_compiled_runs = Obs.Registry.counter "sim.family.compiled_runs"

(* ------------------------------- plan ------------------------------- *)

let key_of ~linkage system =
  let module C = Variants.Canonical in
  let h = C.create () in
  C.feed_tag h "sim-family-compile/v1";
  C.feed_string h (C.of_system system);
  C.feed_list h
    (fun h group ->
      C.feed_list h
        (fun h iid -> C.feed_string h (I.Interface_id.to_string iid))
        group)
    linkage;
  C.digest h

let plan_key ?(linkage = []) system = key_of ~linkage system

let plan ?(linkage = []) system =
  let space = P.space ~linkage system in
  let n = P.size space in
  let sites = P.sites space in
  Family.validate_prefixes system sites;
  Obs.Metric.incr m_plans;
  {
    p_system = system;
    p_space = space;
    p_sites = sites;
    p_n = n;
    p_key = key_of ~linkage system;
    p_lock = Mutex.create ();
    p_models = Array.make n None;
    p_inits = Array.make n None;
    p_entries = Array.make n None;
  }

let key plan = plan.p_key
let system plan = plan.p_system
let configurations plan = plan.p_n

let model_of plan i =
  Mutex.lock plan.p_lock;
  let m =
    match plan.p_models.(i) with
    | Some m -> m
    | None ->
      let m =
        Variants.Flatten.flatten plan.p_system
          (Variants.Variant_space.to_choice (P.assignment plan.p_space i))
      in
      plan.p_models.(i) <- Some m;
      m
  in
  Mutex.unlock plan.p_lock;
  m

let init_of plan i =
  let m = model_of plan i in
  Mutex.lock plan.p_lock;
  let s =
    match plan.p_inits.(i) with
    | Some s -> s
    | None ->
      let s = Spi.Semantics.initial m in
      plan.p_inits.(i) <- Some s;
      s
  in
  Mutex.unlock plan.p_lock;
  s

let compile_entry model init =
  let chan_decls = Array.of_list (Spi.Model.channels model) in
  let nchan = Array.length chan_decls in
  let chan_index = I.Channel_id.Tbl.create (max 16 nchan) in
  Array.iteri
    (fun i c -> I.Channel_id.Tbl.replace chan_index (Spi.Chan.id c) i)
    chan_decls;
  let ix_of cid =
    match I.Channel_id.Tbl.find_opt chan_index cid with
    | Some i -> i
    | None -> -1
  in
  let compile_proc p =
    let modes = Array.of_list (Spi.Process.modes p) in
    let mode_index = I.Mode_id.Tbl.create (max 8 (Array.length modes)) in
    Array.iteri
      (fun i m -> I.Mode_id.Tbl.replace mode_index (Spi.Mode.id m) i)
      modes;
    {
      fp_pid = Spi.Process.id p;
      fp_source = I.Channel_id.Set.is_empty (Spi.Process.inputs p);
      fp_rules =
        Array.of_list
          (List.map
             (fun r ->
               {
                 guard = compile_pred ~ix_of (Spi.Activation.guard r);
                 target =
                   Option.value ~default:(-1)
                     (I.Mode_id.Tbl.find_opt mode_index
                        (Spi.Activation.target_mode r));
               })
             (Spi.Activation.rules (Spi.Process.activation p)));
      fp_modes =
        Array.map
          (fun m ->
            {
              fm_mid = Spi.Mode.id m;
              fm_latency = Spi.Mode.latency m;
              fm_consumes =
                Array.of_list
                  (List.map
                     (fun (cid, rate) ->
                       { c_ix = ix_of cid; c_cid = cid; c_rate = rate })
                     (Spi.Mode.consumptions m));
              fm_produces =
                Array.of_list
                  (List.map
                     (fun (cid, (prod : Spi.Mode.production)) ->
                       {
                         p_ix = ix_of cid;
                         p_cid = cid;
                         p_rate = prod.rate;
                         p_tags = prod.tags;
                       })
                     (Spi.Mode.productions m));
              fm_inherit =
                (match Spi.Mode.payload_policy m with
                | Spi.Mode.Inherit_first -> true
                | Spi.Mode.Fresh -> false);
            })
          modes;
    }
  in
  let procs =
    Array.of_list (List.map compile_proc (Spi.Model.processes model))
  in
  let proc_tbl = I.Process_id.Tbl.create (max 16 (Array.length procs)) in
  Array.iteri (fun i fp -> I.Process_id.Tbl.replace proc_tbl fp.fp_pid i) procs;
  {
    ce_model = model;
    ce_init = init;
    ce_procs = procs;
    ce_chan_ids = Array.map Spi.Chan.id chan_decls;
    ce_chan_register =
      Array.map (fun c -> Spi.Chan.kind c = Spi.Chan.Register) chan_decls;
    ce_chan_cap =
      Array.map
        (fun c -> Option.value ~default:(-1) (Spi.Chan.capacity c))
        chan_decls;
    ce_chan_initial = Array.map Spi.Chan.initial chan_decls;
    ce_chan_index = chan_index;
    ce_proc_tbl = proc_tbl;
  }

let entry_of plan i =
  let model = model_of plan i in
  let init = init_of plan i in
  Mutex.lock plan.p_lock;
  let e =
    match plan.p_entries.(i) with
    | Some e -> e
    | None ->
      let e = compile_entry model init in
      plan.p_entries.(i) <- Some e;
      e
  in
  Mutex.unlock plan.p_lock;
  e

(* ------------------------------- run -------------------------------- *)

type fpstate = {
  mutable busy : bool;
  mutable budget : int;  (* negative = unlimited *)
  mutable recover_at : int;
  (* pending-completion slot, exactly {!Compile}'s: [busy] serializes a
     process's executions, so one slot per process suffices *)
  mutable slot_mode : int;
  mutable slot_started : int;
  mutable slot_payload : int option;
  mutable slot_consumed : (I.Channel_id.t * Spi.Token.t list) list;
}

(* Per-run, per-representative dispatch tables: the policy realizes
   every interval once per (run, representative) instead of once per
   firing. *)
type dispatch = {
  d_lat : int array array;
  d_want : int array array array;
  d_nprod : int array array array;
}

(* Cached settle-probe structures for one still-cold site: the presence
   partition and, per part, the part representative's initial state and
   its site-prefixed processes that could ever fire.  Rebuilt only when
   the sub-family's membership changes (a split), so the per-event probe
   does no partitioning, no model scans and no string prefix tests. *)
type hpart = {
  hp_part : P.t;
  hp_init : Spi.Semantics.state;
  hp_procs : Spi.Process.t list;
}

type hotspot = { hs_site : I.Interface_id.t; hs_parts : hpart list }

type sub = {
  mutable members : P.t;
  rep : int;
  entry : centry;
  dsp : dispatch;
  mutable cold : I.Interface_id.t list;  (* site order *)
  mutable warm : I.Channel_id.Set.t;
  mutable frozen : bool array;
      (* per process index: owned by a still-cold site — hoisted out of
         the sweep so the hot loop never re-derives prefixes *)
  chans : cstate array;
  pstates : fpstate array;
  heap : Heap.Int_heap.t;
  fstate : Fault.state option;
  mutable trace : Trace.entry list;  (* reversed, shared across forks *)
  mutable firings : int;
  mutable now : int;
  mutable hotspots : hotspot list option;  (* None = needs rebuild *)
}

type pending = Sweep | Deliver of I.Channel_id.t * Spi.Token.t
type task = { sub : sub; start : pending }

type stats = {
  mutable splits : int;
  mutable subfamilies : int;
  mutable executed : int;
  mutable shared : int;
  mutable leaves : Family.leaf list;
}

let run ?(policy = Engine.Typical) ?(limits = Engine.default_limits)
    ?(overflow = Spi.Semantics.Reject) ?(stimuli = []) ?(firing_budget = [])
    ?faults ?(jobs = 1) ?(split = `Narrow) plan =
  let start_ns = Obs.Clock.now_ns () in
  let narrow = split = `Narrow in
  (match faults with
  | Some p when p.Fault.degrade <> None ->
    invalid_arg
      "Family_compiled.run: degradation plans are not supported (flattened \
       per-configuration models have no configuration to fall back to)"
  | Some _ | None -> ());
  let space = plan.p_space in
  let n = plan.p_n in
  let choose = Engine.pick policy in
  let dsp_lock = Mutex.create () in
  let dsps = Array.make n None in
  let dispatch_of i =
    let e = entry_of plan i in
    Mutex.lock dsp_lock;
    let d =
      match dsps.(i) with
      | Some d -> d
      | None ->
        let d =
          {
            d_lat =
              Array.map
                (fun fp -> Array.map (fun m -> choose m.fm_latency) fp.fp_modes)
                e.ce_procs;
            d_want =
              Array.map
                (fun fp ->
                  Array.map
                    (fun m ->
                      Array.map (fun cc -> choose cc.c_rate) m.fm_consumes)
                    fp.fp_modes)
                e.ce_procs;
            d_nprod =
              Array.map
                (fun fp ->
                  Array.map
                    (fun m ->
                      Array.map (fun pr -> choose pr.p_rate) m.fm_produces)
                    fp.fp_modes)
                e.ce_procs;
          }
        in
        dsps.(i) <- Some d;
        d
    in
    Mutex.unlock dsp_lock;
    d
  in
  let budget_of_pid pid ~source =
    match
      List.find_opt (fun (q, _) -> I.Process_id.equal q pid) firing_budget
    with
    | Some (_, b) -> b
    | None -> if source then 0 else -1
  in
  let fresh_pstate fp =
    {
      busy = false;
      budget = budget_of_pid fp.fp_pid ~source:fp.fp_source;
      recover_at = 0;
      slot_mode = -1;
      slot_started = 0;
      slot_payload = None;
      slot_consumed = [];
    }
  in
  let frozen_of entry cold =
    Array.map
      (fun fp ->
        Option.is_some
          (Family.cold_site_of cold (I.Process_id.to_string fp.fp_pid)))
      entry.ce_procs
  in
  (* Injection and crash pools are shared by every sub-family and
     immutable after setup: degradation (the one source of mid-run
     injections in {!Compile}) is rejected above, so pending [ev_inject]
     and [ev_crash] codes stay valid across forks without remapping. *)
  let inj_pool =
    Array.of_list
      (List.map (fun (s : Engine.stimulus) -> (s.channel, s.token)) stimuli)
  in
  let fstate0 = Option.map Fault.start faults in
  let crash_schedule =
    match fstate0 with
    | None -> [||]
    | Some fs -> Array.of_list (Fault.crash_schedule fs)
  in
  let crash_pool = Array.map fst crash_schedule in
  let results = Array.make n None in
  let root =
    let entry = entry_of plan 0 in
    let heap = Heap.Int_heap.create () in
    List.iteri
      (fun k (s : Engine.stimulus) ->
        Heap.Int_heap.push ~time:s.at (ev_inject k) heap)
      stimuli;
    Array.iteri
      (fun k (_, at) -> Heap.Int_heap.push ~time:at (ev_crash k) heap)
      crash_schedule;
    {
      members = P.full space;
      rep = 0;
      entry;
      dsp = dispatch_of 0;
      cold = plan.p_sites;
      warm = I.Channel_id.Set.empty;
      frozen = frozen_of entry plan.p_sites;
      chans =
        Array.init (Array.length entry.ce_chan_ids) (fun i ->
            make_chan entry.ce_chan_initial.(i));
      pstates = Array.map fresh_pstate entry.ce_procs;
      heap;
      fstate = fstate0;
      trace = [];
      firings = 0;
      now = 0;
      hotspots = None;
    }
  in
  (* ---------------- per-sub-family machinery ---------------- *)
  let emit c e = c.trace <- e :: c.trace in
  let process_crashed c pid =
    match c.fstate with Some fs -> Fault.crashed fs pid | None -> false
  in
  let cwrite c ix tok =
    write ~register:c.entry.ce_chan_register ~cap:c.entry.ce_chan_cap
      ~ids:c.entry.ce_chan_ids ~overflow c.chans ix tok
  in
  let budget_of_proc p =
    budget_of_pid (Spi.Process.id p)
      ~source:(I.Channel_id.Set.is_empty (Spi.Process.inputs p))
  in
  let hotspots_of c =
    List.map
      (fun site ->
        let pfx = Family.prefix_of site in
        let parts = P.partition_at space c.members site in
        {
          hs_site = site;
          hs_parts =
            List.map
              (fun (_, part) ->
                let rep_b =
                  match P.first part with Some i -> i | None -> assert false
                in
                let model_b = model_of plan rep_b in
                let procs =
                  List.filter
                    (fun p ->
                      Family.has_prefix
                        (I.Process_id.to_string (Spi.Process.id p))
                        pfx
                      && budget_of_proc p <> 0)
                    (Spi.Model.processes model_b)
                in
                { hp_part = part; hp_init = init_of plan rep_b; hp_procs = procs })
              parts;
        })
      c.cold
  in
  (* Would any variant of the part's configurations start a site process
     right now?  Same probe as the interpreted engine's [site_hot]:
     cold-owned (and not warm) channels read the part representative's
     initial state, everything else reads the live rings. *)
  let part_hot c hp =
    let cold_owned cid =
      (not (I.Channel_id.Set.mem cid c.warm))
      && Option.is_some (Family.cold_site_of c.cold (I.Channel_id.to_string cid))
    in
    let view =
      {
        Spi.Predicate.tokens_available =
          (fun cid ->
            if cold_owned cid then Spi.Semantics.tokens_available hp.hp_init cid
            else
              match I.Channel_id.Tbl.find_opt c.entry.ce_chan_index cid with
              | Some ix -> c.chans.(ix).count
              | None -> 0);
        first_tags =
          (fun cid ->
            if cold_owned cid then Spi.Semantics.first_tags hp.hp_init cid
            else
              match I.Channel_id.Tbl.find_opt c.entry.ce_chan_index cid with
              | Some ix ->
                let cs = c.chans.(ix) in
                if cs.count = 0 then None
                else Some (Spi.Token.tags cs.buf.(cs.head))
              | None -> None);
      }
    in
    List.exists
      (fun p ->
        (not (process_crashed c (Spi.Process.id p)))
        && Spi.Activation.enabled view (Spi.Process.activation p) <> [])
      hp.hp_procs
  in
  (* Fork [c] at [site], mirroring {!Family}'s [split] on the compiled
     representation.  [c] keeps the first part; every other part gets a
     fresh sub on its own representative's tables with the shared
     execution transplanted in. *)
  let split stats offer ~sibling_start c site =
    let old_cold = c.cold in
    let is_old_cold id = Option.is_some (Family.cold_site_of old_cold id) in
    let keeps_initial cid =
      (not (I.Channel_id.Set.mem cid c.warm))
      && is_old_cold (I.Channel_id.to_string cid)
    in
    let parts =
      match c.hotspots with
      | Some hs -> (
        match
          List.find_opt (fun h -> I.Interface_id.equal h.hs_site site) hs
        with
        | Some h -> List.map (fun hp -> hp.hp_part) h.hs_parts
        | None -> List.map snd (P.partition_at space c.members site))
      | None -> List.map snd (P.partition_at space c.members site)
    in
    let new_cold =
      List.filter (fun s -> not (I.Interface_id.equal s site)) old_cold
    in
    match parts with
    | [] -> assert false (* members are never empty *)
    | first_part :: rest ->
      stats.splits <- stats.splits + List.length rest;
      List.iter
        (fun part ->
          let rep_b =
            match P.first part with Some i -> i | None -> assert false
          in
          let e_b = entry_of plan rep_b in
          (* Channels of resolved sites and the shared skeleton (plus
             warm channels) carry the shared history; channels cold
             until this split keep their initial tokens. *)
          let chans_b =
            Array.init (Array.length e_b.ce_chan_ids) (fun i ->
                let cid = e_b.ce_chan_ids.(i) in
                if keeps_initial cid then make_chan e_b.ce_chan_initial.(i)
                else
                  match
                    I.Channel_id.Tbl.find_opt c.entry.ce_chan_index cid
                  with
                  | Some pix -> copy_chan c.chans.(pix)
                  | None ->
                    (* unreachable: non-cold channels are shared or
                       belong to resolved sites, identical across
                       members *)
                    make_chan e_b.ce_chan_initial.(i))
          in
          let pstates_b =
            Array.map
              (fun fp ->
                if is_old_cold (I.Process_id.to_string fp.fp_pid) then
                  fresh_pstate fp
                else
                  let ps =
                    c.pstates.(I.Process_id.Tbl.find c.entry.ce_proc_tbl
                                 fp.fp_pid)
                  in
                  (* mode indexes transfer: a process shared by (or
                     resolved for) both members has the same definition,
                     hence the same mode table *)
                  {
                    busy = ps.busy;
                    budget = ps.budget;
                    recover_at = ps.recover_at;
                    slot_mode = ps.slot_mode;
                    slot_started = ps.slot_started;
                    slot_payload = ps.slot_payload;
                    slot_consumed = ps.slot_consumed;
                  })
              e_b.ce_procs
          in
          (* Re-encode pending events for the sibling's process indexes,
             draining a copy of the heap in order so the relative order
             of pending events — and with it every FIFO tie-break —
             carries over exactly.  Injection and crash codes index the
             shared pools and transfer as-is.  Cold-site processes never
             fired, so every pending completion/recovery names a process
             both models share. *)
          let heap_b = Heap.Int_heap.create () in
          let tmp = Heap.Int_heap.copy c.heap in
          while not (Heap.Int_heap.is_empty tmp) do
            let t = Heap.Int_heap.min_time tmp in
            let v = Heap.Int_heap.min_value tmp in
            Heap.Int_heap.drop_min tmp;
            let v' =
              match v land 3 with
              | 1 | 2 ->
                let pid = c.entry.ce_procs.(v lsr 2).fp_pid in
                let ix_b = I.Process_id.Tbl.find e_b.ce_proc_tbl pid in
                if v land 3 = 1 then ev_complete ix_b else ev_recover ix_b
              | _ -> v
            in
            Heap.Int_heap.push ~time:t v' heap_b
          done;
          let sub_b =
            {
              members = part;
              rep = rep_b;
              entry = e_b;
              dsp = dispatch_of rep_b;
              cold = new_cold;
              warm = c.warm;
              frozen = frozen_of e_b new_cold;
              chans = chans_b;
              pstates = pstates_b;
              heap = heap_b;
              fstate = Option.map Fault.copy c.fstate;
              trace = c.trace;
              firings = c.firings;
              now = c.now;
              hotspots = None;
            }
          in
          offer { sub = sub_b; start = sibling_start })
        rest;
      c.members <- first_part;
      c.cold <- new_cold;
      c.frozen <- frozen_of c.entry new_cold;
      c.hotspots <- None
  in
  let rec settle stats offer c =
    match c.cold with
    | [] -> () (* fully resolved: the common fast path *)
    | _ -> (
      let hotspots =
        match c.hotspots with
        | Some h -> h
        | None ->
          let h = hotspots_of c in
          c.hotspots <- Some h;
          h
      in
      match
        List.find_opt (fun h -> List.exists (part_hot c) h.hs_parts) hotspots
      with
      | None -> ()
      | Some h ->
        split stats offer ~sibling_start:Sweep c h.hs_site;
        settle stats offer c)
  in
  let first_payload consumed =
    let rec over_chans = function
      | [] -> None
      | (_, toks) :: rest -> (
        match List.find_map Spi.Token.payload toks with
        | Some _ as p -> p
        | None -> over_chans rest)
    in
    over_chans consumed
  in
  let consume_mode c p_ix m_ix fm =
    let wants = c.dsp.d_want.(p_ix).(m_ix) in
    let ncons = Array.length fm.fm_consumes in
    let rec go k =
      if k = ncons then []
      else begin
        let cc = fm.fm_consumes.(k) in
        let wanted = wants.(k) in
        let toks =
          if cc.c_ix < 0 || wanted <= 0 then []
          else begin
            let cs = c.chans.(cc.c_ix) in
            let nn = if wanted < cs.count then wanted else cs.count in
            if nn <= 0 then []
            else if c.entry.ce_chan_register.(cc.c_ix) then
              (* sampling read: the register keeps its token *)
              [ cs.buf.(cs.head) ]
            else begin
              let rec take n acc =
                if n = 0 then List.rev acc else take (n - 1) (ring_pop cs :: acc)
              in
              take nn []
            end
          end
        in
        (cc.c_cid, toks) :: go (k + 1)
      end
    in
    go 0
  in
  (* One scheduling sweep — {!Compile}'s [try_start] minus configuration
     dispatch, with cold-site processes skipped through the hoisted
     [frozen] table instead of per-process prefix tests. *)
  let try_start stats c now =
    let e = c.entry in
    let nprocs = Array.length e.ce_procs in
    for ix = 0 to nprocs - 1 do
      if not c.frozen.(ix) then begin
        let fp = e.ce_procs.(ix) in
        let ps = c.pstates.(ix) in
        let may_fire =
          (not ps.busy) && ps.budget <> 0
          && not (process_crashed c fp.fp_pid)
        in
        if may_fire then begin
          let nrules = Array.length fp.fp_rules in
          let chosen = ref (-1) in
          let r = ref 0 in
          while !chosen < 0 && !r < nrules do
            if eval c.chans fp.fp_rules.(!r).guard then chosen := !r;
            incr r
          done;
          if !chosen >= 0 && fp.fp_rules.(!chosen).target >= 0 then begin
            let m_ix = fp.fp_rules.(!chosen).target in
            let fm = fp.fp_modes.(m_ix) in
            let attempt =
              match c.fstate with
              | None -> Fault.Proceed { overrun = None }
              | Some fs -> Fault.on_attempt fs ~time:now fp.fp_pid fm.fm_mid
            in
            match attempt with
            | Fault.Retry { retry; backoff } ->
              emit c
                (Trace.Faulted
                   {
                     time = now;
                     fault =
                       Fault.Transient_failure
                         { process = fp.fp_pid; mode = fm.fm_mid; retry; backoff };
                   });
              let until = now + max 1 backoff in
              ps.busy <- true;
              ps.recover_at <- until;
              Heap.Int_heap.push ~time:until (ev_recover ix) c.heap
            | Fault.Exhausted ->
              emit c
                (Trace.Faulted
                   {
                     time = now;
                     fault =
                       Fault.Retries_exhausted
                         { process = fp.fp_pid; mode = fm.fm_mid };
                   })
            | Fault.Proceed { overrun } ->
              let consumed = consume_mode c ix m_ix fm in
              let payload =
                if fm.fm_inherit then first_payload consumed else None
              in
              let extra = Option.value ~default:0 overrun in
              let latency = c.dsp.d_lat.(ix).(m_ix) + extra in
              ps.busy <- true;
              if ps.budget > 0 then ps.budget <- ps.budget - 1;
              c.firings <- c.firings + 1;
              stats.executed <- stats.executed + 1;
              let width = P.cardinal c.members in
              if width > 1 then stats.shared <- stats.shared + 1;
              Obs.Metric.observe m_configs_per_firing width;
              emit c
                (Trace.Started
                   {
                     time = now;
                     process = fp.fp_pid;
                     mode = fm.fm_mid;
                     reconfiguration = None;
                   });
              (match overrun with
              | Some extra ->
                emit c
                  (Trace.Faulted
                     {
                       time = now;
                       fault =
                         Fault.Latency_overrun
                           { process = fp.fp_pid; mode = fm.fm_mid; extra };
                     })
              | None -> ());
              ps.slot_mode <- m_ix;
              ps.slot_started <- now;
              ps.slot_payload <- payload;
              ps.slot_consumed <- consumed;
              Heap.Int_heap.push ~time:(now + latency) (ev_complete ix) c.heap
          end
        end
      end
    done
  in
  (* Same narrowing test as the interpreted engine: every member must
     declare the target channel with identical kind, capacity and
     initial contents; checking one model per subtree-choice part covers
     every member. *)
  let narrowable c site cid =
    let decl_of part =
      let rep_b = match P.first part with Some i -> i | None -> assert false in
      Spi.Model.find_channel cid (model_of plan rep_b)
    in
    match P.partition_at space c.members site with
    | [] -> assert false (* members are never empty *)
    | (_, part0) :: rest -> (
      match decl_of part0 with
      | None -> false
      | Some ch0 ->
        let same ch =
          Spi.Chan.kind ch = Spi.Chan.kind ch0
          && Spi.Chan.capacity ch = Spi.Chan.capacity ch0
          && List.compare_lengths (Spi.Chan.initial ch) (Spi.Chan.initial ch0)
             = 0
          && List.for_all2 Spi.Token.equal (Spi.Chan.initial ch)
               (Spi.Chan.initial ch0)
        in
        List.for_all
          (fun (_, part) ->
            match decl_of part with Some ch -> same ch | None -> false)
          rest)
  in
  let deliver_live c time cid tok =
    (match I.Channel_id.Tbl.find_opt c.entry.ce_chan_index cid with
    | Some ix -> cwrite c ix tok
    | None ->
      (* the interpreter's [Semantics.inject] raises [Not_found] on a
         channel the model does not declare *)
      ignore (Spi.Model.get_channel cid c.entry.ce_model));
    emit c (Trace.Injected { time; channel = cid; token = tok })
  in
  let rec handle_inject stats offer c time cid tok =
    let cold_target =
      if I.Channel_id.Set.mem cid c.warm then None
      else Family.cold_site_of c.cold (I.Channel_id.to_string cid)
    in
    match cold_target with
    | Some site when narrow && narrowable c site cid ->
      c.warm <- I.Channel_id.Set.add cid c.warm;
      handle_inject stats offer c time cid tok
    | Some site ->
      split stats offer ~sibling_start:(Deliver (cid, tok)) c site;
      handle_inject stats offer c time cid tok
    | None -> (
      let outcome =
        match c.fstate with
        | None -> Fault.Deliver
        | Some fs -> Fault.on_token fs ~time cid tok
      in
      match outcome with
      | Fault.Deliver -> deliver_live c time cid tok
      | Fault.Dropped ->
        emit c
          (Trace.Faulted
             { time; fault = Fault.Token_dropped { channel = cid; token = tok } })
      | Fault.Corrupted tok' ->
        emit c
          (Trace.Faulted
             {
               time;
               fault = Fault.Token_corrupted { channel = cid; token = tok' };
             });
        deliver_live c time cid tok'
      | Fault.Duplicated ->
        emit c
          (Trace.Faulted
             {
               time;
               fault = Fault.Token_duplicated { channel = cid; token = tok };
             });
        deliver_live c time cid tok;
        deliver_live c time cid tok)
  in
  let complete c time ix =
    let fp = c.entry.ce_procs.(ix) in
    let ps = c.pstates.(ix) in
    let m_ix = ps.slot_mode in
    let fm = fp.fp_modes.(m_ix) in
    let ns = c.dsp.d_nprod.(ix).(m_ix) in
    let nprods = Array.length fm.fm_produces in
    let rec produce k =
      if k = nprods then []
      else begin
        let pr = fm.fm_produces.(k) in
        let nn = ns.(k) in
        let tok = Spi.Token.make ~tags:pr.p_tags ?payload:ps.slot_payload () in
        let toks = Spi.Token.replicate nn tok in
        if nn > 0 then
          if pr.p_ix < 0 then
            ignore (Spi.Model.get_channel pr.p_cid c.entry.ce_model)
          else List.iter (fun t -> cwrite c pr.p_ix t) toks;
        (pr.p_cid, toks) :: produce (k + 1)
      end
    in
    let produced = produce 0 in
    if ps.recover_at = 0 then ps.busy <- false;
    emit c
      (Trace.Completed
         {
           time;
           started_at = ps.slot_started;
           process = fp.fp_pid;
           firing =
             {
               Spi.Semantics.process = fp.fp_pid;
               mode = fm.fm_mid;
               consumed = ps.slot_consumed;
               produced;
             };
         });
    ps.slot_consumed <- []
  in
  let recover c time ix =
    let ps = c.pstates.(ix) in
    if ps.recover_at <= time then begin
      ps.recover_at <- 0;
      ps.busy <- false
    end
  in
  let crash c time k =
    let pid = crash_pool.(k) in
    match c.fstate with
    | Some fs when not (Fault.crashed fs pid) ->
      Fault.mark_crashed fs pid;
      Fault.note_failure fs pid;
      emit c (Trace.Faulted { time; fault = Fault.Crashed { process = pid } })
    | Some _ | None -> ()
  in
  (* Leaf: every member gets the result its own per-configuration run
     would produce — shared trace, plus a final state rebuilt through
     the reference semantics (live ring contents on shared/resolved/warm
     channels, the member's own initial tokens on channels of sites that
     never went hot). *)
  let finish stats c outcome =
    stats.subfamilies <- stats.subfamilies + 1;
    let trace = List.rev c.trace in
    let is_cold cid =
      (not (I.Channel_id.Set.mem cid c.warm))
      && Option.is_some (Family.cold_site_of c.cold (I.Channel_id.to_string cid))
    in
    let makespan =
      List.fold_left
        (fun acc entry ->
          match entry with
          | Trace.Completed { time; _ } -> max acc time
          | _ -> acc)
        0 c.trace
    in
    stats.leaves <-
      { Family.leaf_members = P.indices c.members; leaf_makespan = makespan }
      :: stats.leaves;
    let live_contents cid =
      match I.Channel_id.Tbl.find_opt c.entry.ce_chan_index cid with
      | Some ix -> contents c.chans.(ix)
      | None -> []
    in
    P.iter
      (fun i ->
        let model_i = model_of plan i in
        let final_state =
          List.fold_left
            (fun st ch ->
              let cid = Spi.Chan.id ch in
              if is_cold cid then st
              else
                let st = Spi.Semantics.clear_channel cid st in
                List.fold_left
                  (fun st tok -> Spi.Semantics.inject model_i cid tok st)
                  st (live_contents cid))
            (init_of plan i)
            (Spi.Model.channels model_i)
        in
        results.(i) <-
          Some
            {
              Engine.trace;
              final_state;
              end_time = c.now;
              outcome;
              firings = c.firings;
              reconfiguration_time = 0;
            })
      c.members
  in
  (* The event loop: {!Compile}'s closure-free dispatch with the
     presence probe wedged in front of every sweep, exactly where the
     interpreted engine runs it. *)
  let exec stats offer { sub = c; start } =
    (match start with
    | Sweep -> ()
    | Deliver (cid, tok) -> handle_inject stats offer c c.now cid tok);
    settle stats offer c;
    try_start stats c c.now;
    let rec loop () =
      if c.firings > limits.Engine.max_firings then
        finish stats c Engine.Firing_limit_reached
      else if Heap.Int_heap.is_empty c.heap then begin
        emit c (Trace.Quiescent { time = c.now });
        finish stats c Engine.Quiescent
      end
      else begin
        let time = Heap.Int_heap.min_time c.heap in
        if time > limits.Engine.max_time then
          finish stats c Engine.Time_limit_reached
        else begin
          let v = Heap.Int_heap.min_value c.heap in
          Heap.Int_heap.drop_min c.heap;
          c.now <- time;
          (match v land 3 with
          | 0 ->
            let cid, tok = inj_pool.(v lsr 2) in
            handle_inject stats offer c time cid tok
          | 1 -> complete c time (v lsr 2)
          | 2 -> recover c time (v lsr 2)
          | _ -> crash c time (v lsr 2));
          settle stats offer c;
          try_start stats c time;
          loop ()
        end
      end
    in
    loop ()
  in
  (* ---------------- drive the sub-families ---------------- *)
  let totals =
    Synth.Par.fold ~jobs
      ~init:(fun () ->
        { splits = 0; subfamilies = 0; executed = 0; shared = 0; leaves = [] })
      ~merge:(fun a b ->
        {
          splits = a.splits + b.splits;
          subfamilies = a.subfamilies + b.subfamilies;
          executed = a.executed + b.executed;
          shared = a.shared + b.shared;
          leaves = a.leaves @ b.leaves;
        })
      ~f:(fun pool stats task ->
        let local = Stack.create () in
        let offer t = if not (Synth.Par.push pool t) then Stack.push t local in
        exec stats offer task;
        while not (Stack.is_empty local) do
          exec stats offer (Stack.pop local)
        done;
        stats)
      [| { sub = root; start = Sweep } |]
  in
  let runs =
    Array.init n (fun i ->
        match results.(i) with
        | Some result ->
          { Family.index = i; assignment = P.assignment space i; result }
        | None ->
          (* unreachable: the leaves partition the full space *)
          invalid_arg "Family_compiled.run: configuration left unfinished")
  in
  Obs.Metric.incr m_runs;
  Obs.Metric.incr m_compiled_runs;
  Obs.Metric.add m_configs n;
  Obs.Metric.add m_splits totals.splits;
  Obs.Metric.add m_subfamilies totals.subfamilies;
  Obs.Metric.add m_shared_firings totals.shared;
  Obs.Registry.record_span ~name:"sim.family.compiled_run_ns" ~start_ns
    ~dur_ns:(Obs.Clock.elapsed_ns start_ns);
  let leaves =
    Array.of_list
      (List.sort
         (fun a b ->
           compare
             (List.hd a.Family.leaf_members)
             (List.hd b.Family.leaf_members))
         totals.leaves)
  in
  {
    Family.runs;
    splits = totals.splits;
    subfamilies = totals.subfamilies;
    executed_firings = totals.executed;
    shared_firings = totals.shared;
    leaves;
  }
