module I = Spi.Ids

type policy = Best_case | Worst_case | Typical

type stimulus = { at : int; channel : I.Channel_id.t; token : Spi.Token.t }
type limits = { max_time : int; max_firings : int }

let default_limits = { max_time = 100_000; max_firings = 100_000 }

type outcome = Quiescent | Time_limit_reached | Firing_limit_reached

type result = {
  trace : Trace.t;
  final_state : Spi.Semantics.state;
  end_time : int;
  outcome : outcome;
  firings : int;
  reconfiguration_time : int;
}

let pick policy interval =
  match policy with
  | Best_case -> Interval.lo interval
  | Worst_case -> Interval.hi interval
  | Typical -> Interval.midpoint interval

(* Observability: the engine feeds the registry in one pass over the
   finished trace, after the event loop — the hot loop itself performs
   no atomic operation.  Latencies are model time units (not wall
   time); [sim.run_ns] is the wall-clock span of the whole run. *)
let m_runs = Obs.Registry.counter "sim.runs"
let m_firings = Obs.Registry.counter "sim.firings"
let m_injected = Obs.Registry.counter "sim.tokens_injected"
let m_consumed = Obs.Registry.counter "sim.tokens_consumed"
let m_produced = Obs.Registry.counter "sim.tokens_produced"
let m_faults = Obs.Registry.counter "sim.fault_events"
let m_degradations = Obs.Registry.counter "sim.degradations"

let record_run_metrics ~start_ns ~trace ~latency_hist_of =
  let injected = ref 0
  and firings = ref 0
  and consumed = ref 0
  and produced = ref 0
  and faults = ref 0
  and degradations = ref 0 in
  let tokens ops =
    List.fold_left (fun acc (_, toks) -> acc + List.length toks) 0 ops
  in
  List.iter
    (function
      | Trace.Injected _ -> incr injected
      | Trace.Completed { time; started_at; process; firing } ->
        incr firings;
        consumed := !consumed + tokens firing.Spi.Semantics.consumed;
        produced := !produced + tokens firing.Spi.Semantics.produced;
        Obs.Metric.observe (latency_hist_of process) (time - started_at)
      | Trace.Faulted { fault; _ } -> (
        incr faults;
        match fault with
        | Fault.Degraded _ -> incr degradations
        | _ -> ())
      | Trace.Started _ | Trace.Quiescent _ -> ())
    trace;
  Obs.Metric.incr m_runs;
  Obs.Metric.add m_firings !firings;
  Obs.Metric.add m_injected !injected;
  Obs.Metric.add m_consumed !consumed;
  Obs.Metric.add m_produced !produced;
  Obs.Metric.add m_faults !faults;
  Obs.Metric.add m_degradations !degradations;
  Obs.Registry.record_span ~name:"sim.run_ns" ~start_ns
    ~dur_ns:(Obs.Clock.elapsed_ns start_ns)

(* Shared with [Compile.run]: both engines feed the same counters and
   per-process latency histograms, so metrics do not depend on which
   engine produced the trace. *)
let record_metrics ~start_ns trace =
  (* histogram handles resolved once per process, not per completion *)
  let latency_hists = I.Process_id.Tbl.create 16 in
  let latency_hist_of pid =
    match I.Process_id.Tbl.find_opt latency_hists pid with
    | Some h -> h
    | None ->
      let h =
        Obs.Registry.histogram ("sim.latency." ^ I.Process_id.to_string pid)
      in
      I.Process_id.Tbl.add latency_hists pid h;
      h
  in
  record_run_metrics ~start_ns ~trace ~latency_hist_of

(* Events carried by the heap. *)
type event =
  | Inject of I.Channel_id.t * Spi.Token.t
  | Complete of completion
  | Recover of I.Process_id.t
      (** end of a fault backoff or forced-reconfiguration pause *)
  | Crash of I.Process_id.t  (** scripted permanent crash *)

and completion = {
  proc : I.Process_id.t;
  mode : Spi.Mode.t;
  started_at : int;
  payload : int option;
  consumed : (I.Channel_id.t * Spi.Token.t list) list;
}

type process_state = {
  mutable busy : bool;
  mutable budget : int option;  (** [None] = unlimited *)
  mutable confcur : Variants.Configuration.confcur;
  mutable allowed : I.Mode_id.Set.t option;
      (** after degradation: only these modes may fire *)
  mutable recover_at : int;
      (** nonzero while a fault pause is pending: the instant it ends *)
  config : Variants.Configuration.t option;
}

let run ?(policy = Typical) ?(limits = default_limits)
    ?(overflow = Spi.Semantics.Reject) ?(configurations = []) ?(stimuli = [])
    ?(firing_budget = []) ?faults model =
  let start_ns = Obs.Clock.now_ns () in
  let config_of pid =
    List.find_opt
      (fun c -> I.Process_id.equal (Variants.Configuration.process c) pid)
      configurations
  in
  List.iter
    (fun conf ->
      let pid = Variants.Configuration.process conf in
      match Spi.Model.find_process pid model with
      | None ->
        invalid_arg
          (Format.asprintf "Engine.run: configuration for unknown process %a"
             I.Process_id.pp pid)
      | Some proc -> (
        match Variants.Configuration.validate_against proc conf with
        | [] -> ()
        | errors ->
          invalid_arg
            (Format.asprintf "@[<v>Engine.run: bad configuration:@,%a@]"
               (Format.pp_print_list ~pp_sep:Format.pp_print_cut
                  Variants.Configuration.pp_error)
               errors)))
    configurations;
  let budget_of pid p =
    match
      List.find_opt (fun (q, _) -> I.Process_id.equal q pid) firing_budget
    with
    | Some (_, n) -> Some n
    | None ->
      if I.Channel_id.Set.is_empty (Spi.Process.inputs p) then Some 0 else None
  in
  let fstate = Option.map Fault.start faults in
  let processes = Spi.Model.processes model in
  (* Process states live in an array; ids resolve through an index map
     built once, so per-event lookups never convert ids to strings. *)
  let proc_index =
    List.fold_left
      (fun (i, acc) p -> (i + 1, I.Process_id.Map.add (Spi.Process.id p) i acc))
      (0, I.Process_id.Map.empty) processes
    |> snd
  in
  let proc_states =
    Array.of_list
      (List.map
         (fun p ->
           let pid = Spi.Process.id p in
           let config = config_of pid in
           {
             busy = false;
             budget = budget_of pid p;
             confcur =
               (match config with
               | None -> None
               | Some c -> Variants.Configuration.start c);
             allowed = None;
             recover_at = 0;
             config;
           })
         processes)
  in
  let pstate pid = proc_states.(I.Process_id.Map.find pid proc_index) in
  let heap = Heap.create () in
  List.iter
    (fun s -> Heap.push ~time:s.at (Inject (s.channel, s.token)) heap)
    stimuli;
  (match fstate with
  | None -> ()
  | Some fs ->
    List.iter
      (fun (pid, at) -> Heap.push ~time:at (Crash pid) heap)
      (Fault.crash_schedule fs));
  let state = ref (Spi.Semantics.initial model) in
  let trace = ref [] in
  let emit e = trace := e :: !trace in
  let firings = ref 0 in
  let reconf_time = ref 0 in
  let choose_rate = pick policy in
  let process_crashed pid =
    match fstate with Some fs -> Fault.crashed fs pid | None -> false
  in
  (* First enabled activation rule whose target survives the degradation
     mask. *)
  let enabled_rule pid allowed =
    match allowed with
    | None -> Spi.Semantics.enabled_rule model !state pid
    | Some ok -> (
      match Spi.Model.find_process pid model with
      | None -> None
      | Some p ->
        List.find_opt
          (fun r -> I.Mode_id.Set.mem (Spi.Activation.target_mode r) ok)
          (Spi.Activation.enabled
             (Spi.Semantics.view !state)
             (Spi.Process.activation p)))
  in
  (* Fault pause: the process is unavailable until [now + latency] (at
     least one time unit so zero-latency faults cannot spin). *)
  let back_off now pid latency =
    let ps = pstate pid in
    let until = now + max 1 latency in
    ps.busy <- true;
    ps.recover_at <- until;
    Heap.push ~time:until (Recover pid) heap
  in
  (* Modes the process may still run once degraded to [target]: the
     fallback configuration's own modes plus shared modes outside every
     configuration. *)
  let allowed_after_degradation pid conf target =
    let entry_modes =
      match Variants.Configuration.find target conf with
      | Some e -> e.Variants.Configuration.modes
      | None -> I.Mode_id.Set.empty
    in
    let shared =
      match Spi.Model.find_process pid model with
      | None -> I.Mode_id.Set.empty
      | Some p ->
        I.Mode_id.Set.filter
          (fun mid ->
            Option.is_none (Variants.Configuration.config_of_mode mid conf))
          (Spi.Process.mode_ids p)
    in
    I.Mode_id.Set.union entry_modes shared
  in
  (* Watchdog: past the failure threshold, force a reconfiguration to
     the fallback configuration (Def. 3's selection function decides the
     fallback cluster; here its abstracted image decides the fallback
     configuration), pay its t_conf, and restrict the process to the
     fallback's modes. *)
  let degrade now pid =
    match fstate with
    | None -> ()
    | Some fs ->
      if Fault.should_degrade fs pid then begin
        match (Fault.plan_of fs).Fault.degrade with
        | None -> ()
        | Some d -> (
          let ps = pstate pid in
          let from_ = ps.confcur in
          match d.Fault.fallback pid from_ with
          | None -> ()
          | Some target
            when (match from_ with
                 | Some cur -> not (I.Config_id.equal cur target)
                 | None -> true) -> (
            let latency =
              match ps.config with
              | Some conf -> Variants.Configuration.reconf_latency target conf
              | None -> 0
            in
            reconf_time := !reconf_time + latency;
            ps.confcur <- Some target;
            (match ps.config with
            | Some conf ->
              ps.allowed <- Some (allowed_after_degradation pid conf target)
            | None -> ());
            Fault.mark_degraded fs pid;
            emit
              (Trace.Faulted
                 {
                   time = now;
                   fault = Fault.Degraded { process = pid; from_; to_ = target; latency };
                 });
            List.iter
              (fun (cid, tok) -> Heap.push ~time:now (Inject (cid, tok)) heap)
              (d.Fault.recovery_stimuli pid target);
            back_off now pid latency)
          | Some _ -> ())
      end
  in
  (* One scheduling sweep: start every idle process whose activation is
     enabled.  Consumption can only disable other processes, never
     enable them, so a single pass per event batch suffices; newly
     produced tokens arrive through Complete events which trigger the
     next sweep. *)
  let try_start now =
    List.iter
      (fun p ->
        let pid = Spi.Process.id p in
        let ps = pstate pid in
        let may_fire =
          (not ps.busy) && ps.budget <> Some 0 && not (process_crashed pid)
        in
        if may_fire then
          match enabled_rule pid ps.allowed with
          | None -> ()
          | Some rule -> (
            match Spi.Process.find_mode (Spi.Activation.target_mode rule) p with
            | None -> ()
            | Some mode -> (
              let mid = Spi.Mode.id mode in
              (* Configuration transition this activation would take —
                 committed only if the firing actually starts. *)
              let transition =
                Option.map
                  (fun conf ->
                    Variants.Configuration.on_activation conf ps.confcur mid)
                  ps.config
              in
              let aborted_reconf =
                match (transition, fstate) with
                | ( Some (Variants.Configuration.Reconfigure { target; latency }, _),
                    Some fs )
                  when Fault.reconf_fails fs ~time:now pid ->
                  Some (target, latency)
                | _ -> None
              in
              match aborted_reconf with
              | Some (target, latency) ->
                (* the switch aborts after paying t_conf; confcur keeps
                   its old value and the mode does not execute *)
                reconf_time := !reconf_time + latency;
                emit
                  (Trace.Faulted
                     {
                       time = now;
                       fault =
                         Fault.Reconfiguration_failed
                           { process = pid; target; latency };
                     });
                (match fstate with
                | Some fs -> Fault.note_failure fs pid
                | None -> ());
                back_off now pid latency;
                degrade now pid
              | None -> (
                let attempt =
                  match fstate with
                  | None -> Fault.Proceed { overrun = None }
                  | Some fs -> Fault.on_attempt fs ~time:now pid mid
                in
                match attempt with
                | Fault.Retry { retry; backoff } ->
                  emit
                    (Trace.Faulted
                       {
                         time = now;
                         fault =
                           Fault.Transient_failure
                             { process = pid; mode = mid; retry; backoff };
                       });
                  back_off now pid backoff;
                  degrade now pid
                | Fault.Exhausted ->
                  emit
                    (Trace.Faulted
                       {
                         time = now;
                         fault = Fault.Retries_exhausted { process = pid; mode = mid };
                       });
                  degrade now pid
                | Fault.Proceed { overrun } ->
                  let reconfiguration =
                    match transition with
                    | None -> None
                    | Some (Variants.Configuration.Stay, confcur) ->
                      ps.confcur <- confcur;
                      None
                    | Some
                        ( Variants.Configuration.Reconfigure { target; latency },
                          confcur ) ->
                      ps.confcur <- confcur;
                      Some (target, latency)
                  in
                  let state', consumed =
                    Spi.Semantics.consume ~choose_rate mode !state
                  in
                  state := state';
                  let payload = Spi.Semantics.inherited_payload mode consumed in
                  let reconf_latency =
                    match reconfiguration with
                    | None -> 0
                    | Some (_, latency) -> latency
                  in
                  reconf_time := !reconf_time + reconf_latency;
                  let extra = Option.value ~default:0 overrun in
                  let latency =
                    reconf_latency + pick policy (Spi.Mode.latency mode) + extra
                  in
                  ps.busy <- true;
                  ps.budget <- Option.map (fun n -> n - 1) ps.budget;
                  incr firings;
                  emit
                    (Trace.Started
                       { time = now; process = pid; mode = mid; reconfiguration });
                  (match overrun with
                  | Some extra ->
                    emit
                      (Trace.Faulted
                         {
                           time = now;
                           fault =
                             Fault.Latency_overrun
                               { process = pid; mode = mid; extra };
                         })
                  | None -> ());
                  Heap.push ~time:(now + latency)
                    (Complete
                       { proc = pid; mode; started_at = now; payload; consumed })
                    heap))))
      processes
  in
  let inject_token time cid tok =
    let outcome =
      match fstate with
      | None -> Fault.Deliver
      | Some fs -> Fault.on_token fs ~time cid tok
    in
    let deliver tok =
      state := Spi.Semantics.inject ~overflow model cid tok !state;
      emit (Trace.Injected { time; channel = cid; token = tok })
    in
    match outcome with
    | Fault.Deliver -> deliver tok
    | Fault.Dropped ->
      emit
        (Trace.Faulted
           { time; fault = Fault.Token_dropped { channel = cid; token = tok } })
    | Fault.Corrupted tok' ->
      emit
        (Trace.Faulted
           {
             time;
             fault = Fault.Token_corrupted { channel = cid; token = tok' };
           });
      deliver tok'
    | Fault.Duplicated ->
      emit
        (Trace.Faulted
           {
             time;
             fault = Fault.Token_duplicated { channel = cid; token = tok };
           });
      deliver tok;
      deliver tok
  in
  let now = ref 0 in
  let outcome = ref Quiescent in
  try_start 0;
  let rec loop () =
    if !firings > limits.max_firings then outcome := Firing_limit_reached
    else
      match Heap.pop_min heap with
      | None ->
        emit (Trace.Quiescent { time = !now });
        outcome := Quiescent
      | Some (time, _) when time > limits.max_time ->
        outcome := Time_limit_reached
      | Some (time, event) ->
        now := time;
        (match event with
        | Inject (cid, tok) -> inject_token time cid tok
        | Complete { proc; mode; started_at; payload; consumed } ->
          let state', produced =
            Spi.Semantics.produce ~overflow ~choose_rate model mode
              ~inherited_payload:payload !state
          in
          state := state';
          let ps = pstate proc in
          if ps.recover_at = 0 then ps.busy <- false;
          let firing =
            { Spi.Semantics.process = proc; mode = Spi.Mode.id mode; consumed; produced }
          in
          emit (Trace.Completed { time; started_at; process = proc; firing })
        | Recover pid ->
          let ps = pstate pid in
          if ps.recover_at <= time then begin
            ps.recover_at <- 0;
            ps.busy <- false
          end
        | Crash pid -> (
          match fstate with
          | Some fs when not (Fault.crashed fs pid) ->
            Fault.mark_crashed fs pid;
            Fault.note_failure fs pid;
            emit
              (Trace.Faulted
                 { time; fault = Fault.Crashed { process = pid } });
            degrade time pid
          | Some _ | None -> ()));
        try_start time;
        loop ()
  in
  loop ();
  let trace = List.rev !trace in
  record_metrics ~start_ns trace;
  {
    trace;
    final_state = !state;
    end_time = !now;
    outcome = !outcome;
    firings = !firings;
    reconfiguration_time = !reconf_time;
  }

let pp_policy ppf = function
  | Best_case -> Format.pp_print_string ppf "best-case"
  | Worst_case -> Format.pp_print_string ppf "worst-case"
  | Typical -> Format.pp_print_string ppf "typical"

let pp_outcome ppf = function
  | Quiescent -> Format.pp_print_string ppf "quiescent"
  | Time_limit_reached -> Format.pp_print_string ppf "time limit reached"
  | Firing_limit_reached -> Format.pp_print_string ppf "firing limit reached"

let pp_summary ppf r =
  Format.fprintf ppf
    "end=%d firings=%d reconf_time=%d outcome=%a" r.end_time r.firings
    r.reconfiguration_time pp_outcome r.outcome
