(** Post-simulation statistics.

    Derived entirely from a finished {!Engine.result}: per-process
    utilization (the basis of software schedulability), per-channel
    occupancy high-water marks (the empirical counterpart of
    {!Spi.Analysis.queue_bound}, used for buffer sizing), and throughput
    figures. *)

type process_stats = {
  proc : Spi.Ids.Process_id.t;
  firings : int;
  busy_time : int;  (** total time between starts and completions *)
  utilization : float;  (** busy time / simulated end time *)
  reconfigurations : int;
  reconfiguration_time : int;
  retries : int;  (** transient-fault retry attempts taken *)
  degraded : bool;  (** the watchdog forced this process to its fallback *)
}

type channel_stats = {
  chan : Spi.Ids.Channel_id.t;
  tokens_through : int;  (** tokens ever written (injected or produced) *)
  high_water : int;  (** maximum simultaneous occupancy observed *)
  final_occupancy : int;
}

(** Counts of fault events observed in the trace, by kind. *)
type fault_stats = {
  token_faults : int;  (** dropped + corrupted + duplicated tokens *)
  transient_failures : int;
  retries_exhausted : int;
  crashes : int;
  latency_overruns : int;
  reconfiguration_failures : int;
  degradations : int;
}

val no_faults : fault_stats
(** All counters zero — what a fault-free run reports. *)

type t = {
  processes : process_stats list;
  channels : channel_stats list;
  makespan : int;
  total_firings : int;
  faults : fault_stats;
}

val of_result : Spi.Model.t -> Engine.result -> t
val process : Spi.Ids.Process_id.t -> t -> process_stats option
val channel : Spi.Ids.Channel_id.t -> t -> channel_stats option

val total_faults : fault_stats -> int

val pp_fault_stats : Format.formatter -> fault_stats -> unit
val pp : Format.formatter -> t -> unit
