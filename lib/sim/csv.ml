module I = Spi.Ids

let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let field s =
  if needs_quoting s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let row cells = String.concat "," (List.map field cells) ^ "\n"

let moved_detail moved =
  String.concat ";"
    (List.map
       (fun (cid, toks) ->
         Format.sprintf "%s:%d" (I.Channel_id.to_string cid) (List.length toks))
       moved)

let trace_to_string (result : Engine.result) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (row [ "time"; "kind"; "subject"; "mode"; "detail" ]);
  List.iter
    (fun entry ->
      let cells =
        match entry with
        | Trace.Injected { time; channel; token } ->
          [
            string_of_int time;
            "inject";
            I.Channel_id.to_string channel;
            "";
            Format.asprintf "%a" Spi.Token.pp token;
          ]
        | Trace.Started { time; process; mode; reconfiguration } ->
          [
            string_of_int time;
            "start";
            I.Process_id.to_string process;
            I.Mode_id.to_string mode;
            (match reconfiguration with
            | None -> ""
            | Some (config, latency) ->
              Format.sprintf "reconfigure:%s:+%d"
                (I.Config_id.to_string config)
                latency);
          ]
        | Trace.Completed { time; started_at; process; firing } ->
          [
            string_of_int time;
            "complete";
            I.Process_id.to_string process;
            I.Mode_id.to_string firing.Spi.Semantics.mode;
            Format.sprintf "started=%d;in=%s;out=%s" started_at
              (moved_detail firing.Spi.Semantics.consumed)
              (moved_detail firing.Spi.Semantics.produced);
          ]
        | Trace.Faulted { time; fault } ->
          let subject, mode, detail =
            match fault with
            | Fault.Token_dropped { channel; token }
            | Fault.Token_corrupted { channel; token }
            | Fault.Token_duplicated { channel; token } ->
              ( I.Channel_id.to_string channel,
                "",
                Format.asprintf "%a" Spi.Token.pp token )
            | Fault.Transient_failure { process; mode; retry; backoff } ->
              ( I.Process_id.to_string process,
                I.Mode_id.to_string mode,
                Format.sprintf "retry=%d;backoff=%d" retry backoff )
            | Fault.Retries_exhausted { process; mode } ->
              (I.Process_id.to_string process, I.Mode_id.to_string mode, "")
            | Fault.Crashed { process } ->
              (I.Process_id.to_string process, "", "")
            | Fault.Latency_overrun { process; mode; extra } ->
              ( I.Process_id.to_string process,
                I.Mode_id.to_string mode,
                Format.sprintf "extra=%d" extra )
            | Fault.Reconfiguration_failed { process; target; latency } ->
              ( I.Process_id.to_string process,
                "",
                Format.sprintf "target=%s;latency=%d"
                  (I.Config_id.to_string target)
                  latency )
            | Fault.Degraded { process; from_; to_; latency } ->
              ( I.Process_id.to_string process,
                "",
                Format.sprintf "from=%s;to=%s;latency=%d"
                  (match from_ with
                  | None -> ""
                  | Some c -> I.Config_id.to_string c)
                  (I.Config_id.to_string to_)
                  latency )
          in
          [
            string_of_int time;
            "fault:" ^ Fault.event_kind fault;
            subject;
            mode;
            detail;
          ]
        | Trace.Quiescent { time } ->
          [ string_of_int time; "quiescent"; ""; ""; "" ]
      in
      Buffer.add_string buf (row cells))
    result.Engine.trace;
  Buffer.contents buf

let process_stats_to_string model result =
  let stats = Stats.of_result model result in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (row
       [
         "process"; "firings"; "busy_time"; "utilization"; "reconfigurations";
         "reconfiguration_time"; "retries"; "degraded";
       ]);
  List.iter
    (fun (p : Stats.process_stats) ->
      Buffer.add_string buf
        (row
           [
             I.Process_id.to_string p.Stats.proc;
             string_of_int p.Stats.firings;
             string_of_int p.Stats.busy_time;
             Format.sprintf "%.4f" p.Stats.utilization;
             string_of_int p.Stats.reconfigurations;
             string_of_int p.Stats.reconfiguration_time;
             string_of_int p.Stats.retries;
             (if p.Stats.degraded then "yes" else "no");
           ]))
    stats.Stats.processes;
  Buffer.contents buf

let channel_stats_to_string model result =
  let stats = Stats.of_result model result in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (row [ "channel"; "tokens_through"; "high_water"; "final_occupancy" ]);
  List.iter
    (fun (c : Stats.channel_stats) ->
      Buffer.add_string buf
        (row
           [
             I.Channel_id.to_string c.Stats.chan;
             string_of_int c.Stats.tokens_through;
             string_of_int c.Stats.high_water;
             string_of_int c.Stats.final_occupancy;
           ]))
    stats.Stats.channels;
  Buffer.contents buf

let trace_to_file path result =
  let oc = open_out path in
  output_string oc (trace_to_string result);
  close_out oc
