module I = Spi.Ids
open Crt

(* ------------------------- compiled structures ----------------------- *)

(* Guards, consumption/production tables, channel rings and the event
   coding live in {!Crt}, shared with the compiled family engine. *)

type cmode = {
  cm_mid : I.Mode_id.t;
  cm_latency : Interval.t;
  cm_consumes : ccons array;  (** in {!Spi.Mode.consumptions} order *)
  cm_produces : cprod array;  (** in {!Spi.Mode.productions} order *)
  cm_inherit : bool;
  cm_conf : int;  (** owning configuration index; -1 shared / none *)
}

(* Per-process configuration tables: ids, latencies and degradation
   masks resolved to dense indexes at compile time. *)
type cconf = {
  cf_ids : I.Config_id.t array;  (** in declaration order *)
  cf_latency : int array;
  cf_initial : int;  (** -1 when the set declares no initial *)
  cf_masks : bool array array;
      (** [cf_masks.(c).(m)]: may mode [m] still fire once degraded to
          configuration [c] (the configuration's own modes plus modes
          outside every configuration) *)
  cf_shared_mask : bool array;
      (** modes outside every configuration — the mask for a fallback
          target the set does not know *)
  cf_index : int I.Config_id.Tbl.t;
}

type cproc = {
  pr_pid : I.Process_id.t;
  pr_source : bool;  (** no input channels: default firing budget 0 *)
  pr_rules : crule array;
  pr_modes : cmode array;
  pr_conf : cconf option;
}

type plan = {
  model : Spi.Model.t;
  configurations : Variants.Configuration.t list;
  procs : cproc array;
  chan_ids : I.Channel_id.t array;
  chan_decls : Spi.Chan.t array;
  chan_register : bool array;
  chan_cap : int array;  (** -1 = unbounded *)
  chan_initial : Spi.Token.t list array;
  chan_index : int I.Channel_id.Tbl.t;
  key : string;
}

let key plan = plan.key
let model plan = plan.model
let configurations plan = plan.configurations

let m_compiles = Obs.Registry.counter "sim.compiles"
let m_compiled_runs = Obs.Registry.counter "sim.compiled_runs"

(* ------------------------------ compile ------------------------------ *)

let key_of model configurations =
  let module C = Variants.Canonical in
  let h = C.create () in
  C.feed_tag h "sim-compile/v1";
  C.feed_string h (C.of_model model);
  C.feed_list h
    (fun h conf ->
      C.feed_tag h "configuration";
      C.feed_string h
        (I.Process_id.to_string (Variants.Configuration.process conf));
      C.feed_option h
        (fun h id -> C.feed_string h (I.Config_id.to_string id))
        (Variants.Configuration.start conf);
      C.feed_list h
        (fun h (e : Variants.Configuration.entry) ->
          C.feed_string h (I.Config_id.to_string e.config_id);
          C.feed_int h e.reconf_latency;
          C.feed_list h
            (fun h mid -> C.feed_string h (I.Mode_id.to_string mid))
            (I.Mode_id.Set.elements e.modes))
        (Variants.Configuration.entries conf))
    (List.sort
       (fun a b ->
         I.Process_id.compare
           (Variants.Configuration.process a)
           (Variants.Configuration.process b))
       configurations);
  C.digest h

let plan_key ?(configurations = []) model = key_of model configurations

let compile ?(configurations = []) model =
  Obs.Registry.with_span "sim.compile_ns" @@ fun () ->
  (* Same up-front validation as [Engine.run], so a bad configuration
     set fails at compile time rather than on the thousandth run. *)
  List.iter
    (fun conf ->
      let pid = Variants.Configuration.process conf in
      match Spi.Model.find_process pid model with
      | None ->
        invalid_arg
          (Format.asprintf
             "Sim.Compile.compile: configuration for unknown process %a"
             I.Process_id.pp pid)
      | Some proc -> (
        match Variants.Configuration.validate_against proc conf with
        | [] -> ()
        | errors ->
          invalid_arg
            (Format.asprintf "@[<v>Sim.Compile.compile: bad configuration:@,%a@]"
               (Format.pp_print_list ~pp_sep:Format.pp_print_cut
                  Variants.Configuration.pp_error)
               errors)))
    configurations;
  let channels = Spi.Model.channels model in
  let chan_decls = Array.of_list channels in
  let nchan = Array.length chan_decls in
  let chan_index = I.Channel_id.Tbl.create (max 16 nchan) in
  Array.iteri
    (fun i c -> I.Channel_id.Tbl.replace chan_index (Spi.Chan.id c) i)
    chan_decls;
  let ix_of cid =
    match I.Channel_id.Tbl.find_opt chan_index cid with
    | Some i -> i
    | None -> -1
  in
  let compile_pred = Crt.compile_pred ~ix_of in
  let compile_proc p =
    let pid = Spi.Process.id p in
    let modes = Array.of_list (Spi.Process.modes p) in
    let nmodes = Array.length modes in
    let mode_index = I.Mode_id.Tbl.create (max 8 nmodes) in
    Array.iteri
      (fun i m -> I.Mode_id.Tbl.replace mode_index (Spi.Mode.id m) i)
      modes;
    let conf =
      List.find_opt
        (fun c ->
          I.Process_id.equal (Variants.Configuration.process c) pid)
        configurations
    in
    let cconf =
      Option.map
        (fun c ->
          let entries = Array.of_list (Variants.Configuration.entries c) in
          let n = Array.length entries in
          let cf_ids =
            Array.map
              (fun (e : Variants.Configuration.entry) -> e.config_id)
              entries
          in
          let cf_latency =
            Array.map
              (fun (e : Variants.Configuration.entry) -> e.reconf_latency)
              entries
          in
          let cf_index = I.Config_id.Tbl.create (max 8 n) in
          Array.iteri
            (fun i id -> I.Config_id.Tbl.replace cf_index id i)
            cf_ids;
          let cf_initial =
            match Variants.Configuration.start c with
            | None -> -1
            | Some id ->
              Option.value ~default:(-1) (I.Config_id.Tbl.find_opt cf_index id)
          in
          let cf_shared_mask =
            Array.map
              (fun m ->
                Option.is_none
                  (Variants.Configuration.config_of_mode (Spi.Mode.id m) c))
              modes
          in
          let cf_masks =
            Array.init n (fun ci ->
                let entry_modes =
                  entries.(ci).Variants.Configuration.modes
                in
                Array.mapi
                  (fun mi m ->
                    cf_shared_mask.(mi)
                    || I.Mode_id.Set.mem (Spi.Mode.id m) entry_modes)
                  modes)
          in
          { cf_ids; cf_latency; cf_initial; cf_masks; cf_shared_mask; cf_index })
        conf
    in
    let cmodes =
      Array.map
        (fun m ->
          {
            cm_mid = Spi.Mode.id m;
            cm_latency = Spi.Mode.latency m;
            cm_consumes =
              Array.of_list
                (List.map
                   (fun (cid, rate) ->
                     { c_ix = ix_of cid; c_cid = cid; c_rate = rate })
                   (Spi.Mode.consumptions m));
            cm_produces =
              Array.of_list
                (List.map
                   (fun (cid, (prod : Spi.Mode.production)) ->
                     {
                       p_ix = ix_of cid;
                       p_cid = cid;
                       p_rate = prod.rate;
                       p_tags = prod.tags;
                     })
                   (Spi.Mode.productions m));
            cm_inherit =
              (match Spi.Mode.payload_policy m with
              | Spi.Mode.Inherit_first -> true
              | Spi.Mode.Fresh -> false);
            cm_conf =
              (match conf with
              | None -> -1
              | Some c -> (
                match
                  Variants.Configuration.config_of_mode (Spi.Mode.id m) c
                with
                | None -> -1
                | Some cfg ->
                  Option.value ~default:(-1)
                    (I.Config_id.Tbl.find_opt
                       (Option.get cconf).cf_index cfg)));
          })
        modes
    in
    let rules =
      Array.of_list
        (List.map
           (fun r ->
             {
               guard = compile_pred (Spi.Activation.guard r);
               target =
                 Option.value ~default:(-1)
                   (I.Mode_id.Tbl.find_opt mode_index
                      (Spi.Activation.target_mode r));
             })
           (Spi.Activation.rules (Spi.Process.activation p)))
    in
    {
      pr_pid = pid;
      pr_source = I.Channel_id.Set.is_empty (Spi.Process.inputs p);
      pr_rules = rules;
      pr_modes = cmodes;
      pr_conf = cconf;
    }
  in
  let procs =
    Array.of_list (List.map compile_proc (Spi.Model.processes model))
  in
  Obs.Metric.incr m_compiles;
  {
    model;
    configurations;
    procs;
    chan_ids = Array.map Spi.Chan.id chan_decls;
    chan_decls;
    chan_register =
      Array.map (fun c -> Spi.Chan.kind c = Spi.Chan.Register) chan_decls;
    chan_cap =
      Array.map
        (fun c -> Option.value ~default:(-1) (Spi.Chan.capacity c))
        chan_decls;
    chan_initial = Array.map Spi.Chan.initial chan_decls;
    chan_index;
    key = key_of model configurations;
  }

(* ------------------------------- run --------------------------------- *)

type pstate = {
  mutable busy : bool;
  mutable budget : int;  (** negative = unlimited *)
  mutable conf_ix : int;
      (** -1 none; -2 a fallback target outside the configuration set *)
  mutable conf_id : I.Config_id.t option;
  mutable allowed : bool array option;  (** degradation mask over modes *)
  mutable recover_at : int;
  (* The pending-completion slot: [busy] serializes a process's
     executions, so at most one Complete event per process is in flight
     and its payload needs no allocation on the heap. *)
  mutable slot_mode : int;
  mutable slot_started : int;
  mutable slot_payload : int option;
  mutable slot_consumed : (I.Channel_id.t * Spi.Token.t list) list;
}

let run ?(policy = Engine.Typical) ?(limits = Engine.default_limits)
    ?(overflow = Spi.Semantics.Reject) ?(stimuli = []) ?(firing_budget = [])
    ?faults plan =
  let start_ns = Obs.Clock.now_ns () in
  let nprocs = Array.length plan.procs in
  let nchan = Array.length plan.chan_decls in
  (* Per-run dispatch plan: the policy realizes every interval once, so
     the loop reads plain ints instead of resolving intervals per
     firing. *)
  let choose = Engine.pick policy in
  let lat =
    Array.map
      (fun cp -> Array.map (fun m -> choose m.cm_latency) cp.pr_modes)
      plan.procs
  in
  let want =
    Array.map
      (fun cp ->
        Array.map
          (fun m -> Array.map (fun c -> choose c.c_rate) m.cm_consumes)
          cp.pr_modes)
      plan.procs
  in
  let nprod =
    Array.map
      (fun cp ->
        Array.map
          (fun m -> Array.map (fun p -> choose p.p_rate) m.cm_produces)
          cp.pr_modes)
      plan.procs
  in
  let chans = Array.init nchan (fun i -> make_chan plan.chan_initial.(i)) in
  let chan_write =
    write ~register:plan.chan_register ~cap:plan.chan_cap ~ids:plan.chan_ids
      ~overflow chans
  in
  let geval p = eval chans p in
  let fstate = Option.map Fault.start faults in
  let pstates =
    Array.map
      (fun cp ->
        let budget =
          match
            List.find_opt
              (fun (q, _) -> I.Process_id.equal q cp.pr_pid)
              firing_budget
          with
          | Some (_, n) -> n
          | None -> if cp.pr_source then 0 else -1
        in
        let conf_ix, conf_id =
          match cp.pr_conf with
          | Some cf when cf.cf_initial >= 0 ->
            (cf.cf_initial, Some cf.cf_ids.(cf.cf_initial))
          | Some _ | None -> (-1, None)
        in
        {
          busy = false;
          budget;
          conf_ix;
          conf_id;
          allowed = None;
          recover_at = 0;
          slot_mode = -1;
          slot_started = 0;
          slot_payload = None;
          slot_consumed = [];
        })
      plan.procs
  in
  let proc_tbl = I.Process_id.Tbl.create (max 16 nprocs) in
  Array.iteri
    (fun i cp -> I.Process_id.Tbl.replace proc_tbl cp.pr_pid i)
    plan.procs;
  (* [Not_found] on an unknown process, mirroring the interpreter's
     index map. *)
  let proc_ix pid = I.Process_id.Tbl.find proc_tbl pid in
  let heap = Heap.Int_heap.create () in
  (* Pending injections and scripted crashes carry ids the int-coded
     heap cannot: they live in side pools indexed by the event code. *)
  let inj_pool = ref (Array.make 16 (None : (I.Channel_id.t * Spi.Token.t) option)) in
  let inj_n = ref 0 in
  let add_inject cid tok =
    if !inj_n = Array.length !inj_pool then begin
      let pool = Array.make (2 * Array.length !inj_pool) None in
      Array.blit !inj_pool 0 pool 0 !inj_n;
      inj_pool := pool
    end;
    !inj_pool.(!inj_n) <- Some (cid, tok);
    let k = !inj_n in
    incr inj_n;
    k
  in
  List.iter
    (fun (s : Engine.stimulus) ->
      Heap.Int_heap.push ~time:s.at (ev_inject (add_inject s.channel s.token))
        heap)
    stimuli;
  let crash_pool =
    match fstate with
    | None -> [||]
    | Some fs ->
      let schedule = Array.of_list (Fault.crash_schedule fs) in
      Array.iteri
        (fun k (_, at) -> Heap.Int_heap.push ~time:at (ev_crash k) heap)
        schedule;
      Array.map fst schedule
  in
  let trace = ref [] in
  let emit e = trace := e :: !trace in
  let firings = ref 0 in
  let reconf_time = ref 0 in
  let back_off now ix latency =
    let ps = pstates.(ix) in
    let until = now + max 1 latency in
    ps.busy <- true;
    ps.recover_at <- until;
    Heap.Int_heap.push ~time:until (ev_recover ix) heap
  in
  let degrade now pid =
    match fstate with
    | None -> ()
    | Some fs ->
      if Fault.should_degrade fs pid then begin
        match (Fault.plan_of fs).Fault.degrade with
        | None -> ()
        | Some d -> (
          let ix = proc_ix pid in
          let ps = pstates.(ix) in
          let from_ = ps.conf_id in
          match d.Fault.fallback pid from_ with
          | None -> ()
          | Some target
            when (match from_ with
                 | Some cur -> not (I.Config_id.equal cur target)
                 | None -> true) ->
            let cp = plan.procs.(ix) in
            let latency, target_ix =
              match cp.pr_conf with
              | Some cf -> (
                match I.Config_id.Tbl.find_opt cf.cf_index target with
                | Some ti -> (cf.cf_latency.(ti), ti)
                | None -> (0, -2))
              | None -> (0, -1)
            in
            reconf_time := !reconf_time + latency;
            ps.conf_ix <- target_ix;
            ps.conf_id <- Some target;
            (match cp.pr_conf with
            | Some cf ->
              ps.allowed <-
                Some
                  (if target_ix >= 0 then cf.cf_masks.(target_ix)
                   else cf.cf_shared_mask)
            | None -> ());
            Fault.mark_degraded fs pid;
            emit
              (Trace.Faulted
                 {
                   time = now;
                   fault =
                     Fault.Degraded { process = pid; from_; to_ = target; latency };
                 });
            List.iter
              (fun (cid, tok) ->
                Heap.Int_heap.push ~time:now (ev_inject (add_inject cid tok))
                  heap)
              (d.Fault.recovery_stimuli pid target);
            back_off now ix latency
          | Some _ -> ())
      end
  in
  let first_payload consumed =
    let rec over_chans = function
      | [] -> None
      | (_, toks) :: rest -> (
        match List.find_map Spi.Token.payload toks with
        | Some _ as p -> p
        | None -> over_chans rest)
    in
    over_chans consumed
  in
  let consume_mode p_ix m_ix cm =
    let wants = want.(p_ix).(m_ix) in
    let ncons = Array.length cm.cm_consumes in
    let rec go k =
      if k = ncons then []
      else begin
        let c = cm.cm_consumes.(k) in
        let wanted = wants.(k) in
        let toks =
          if c.c_ix < 0 || wanted <= 0 then []
          else begin
            let cs = chans.(c.c_ix) in
            let n = if wanted < cs.count then wanted else cs.count in
            if n <= 0 then []
            else if plan.chan_register.(c.c_ix) then
              (* sampling read: the register keeps its token *)
              [ cs.buf.(cs.head) ]
            else begin
              let rec take n acc =
                if n = 0 then List.rev acc else take (n - 1) (ring_pop cs :: acc)
              in
              take n []
            end
          end
        in
        (c.c_cid, toks) :: go (k + 1)
      end
    in
    go 0
  in
  let try_start now =
    for ix = 0 to nprocs - 1 do
      let cp = plan.procs.(ix) in
      let ps = pstates.(ix) in
      let may_fire =
        (not ps.busy)
        && ps.budget <> 0
        && match fstate with
           | Some fs -> not (Fault.crashed fs cp.pr_pid)
           | None -> true
      in
      if may_fire then begin
        (* First enabled rule; under a degradation mask, the first
           enabled rule whose target mode survives the mask. *)
        let nrules = Array.length cp.pr_rules in
        let chosen = ref (-1) in
        let r = ref 0 in
        (match ps.allowed with
        | None ->
          while !chosen < 0 && !r < nrules do
            if geval cp.pr_rules.(!r).guard then chosen := !r;
            incr r
          done
        | Some mask ->
          while !chosen < 0 && !r < nrules do
            let rule = cp.pr_rules.(!r) in
            if geval rule.guard && rule.target >= 0 && mask.(rule.target) then
              chosen := !r;
            incr r
          done);
        if !chosen >= 0 && cp.pr_rules.(!chosen).target >= 0 then begin
          let m_ix = cp.pr_rules.(!chosen).target in
          let cm = cp.pr_modes.(m_ix) in
          (* Configuration transition this activation would take —
             committed only if the firing actually starts. *)
          let reconfigure, r_target_ix, r_latency =
            match cp.pr_conf with
            | None -> (false, -1, 0)
            | Some cf ->
              if cm.cm_conf < 0 || ps.conf_ix = cm.cm_conf then (false, -1, 0)
              else (true, cm.cm_conf, cf.cf_latency.(cm.cm_conf))
          in
          let aborted =
            reconfigure
            &&
            match fstate with
            | Some fs -> Fault.reconf_fails fs ~time:now cp.pr_pid
            | None -> false
          in
          if aborted then begin
            let cf = Option.get cp.pr_conf in
            let target = cf.cf_ids.(r_target_ix) in
            reconf_time := !reconf_time + r_latency;
            emit
              (Trace.Faulted
                 {
                   time = now;
                   fault =
                     Fault.Reconfiguration_failed
                       { process = cp.pr_pid; target; latency = r_latency };
                 });
            (match fstate with
            | Some fs -> Fault.note_failure fs cp.pr_pid
            | None -> ());
            back_off now ix r_latency;
            degrade now cp.pr_pid
          end
          else begin
            let attempt =
              match fstate with
              | None -> Fault.Proceed { overrun = None }
              | Some fs -> Fault.on_attempt fs ~time:now cp.pr_pid cm.cm_mid
            in
            match attempt with
            | Fault.Retry { retry; backoff } ->
              emit
                (Trace.Faulted
                   {
                     time = now;
                     fault =
                       Fault.Transient_failure
                         { process = cp.pr_pid; mode = cm.cm_mid; retry; backoff };
                   });
              back_off now ix backoff;
              degrade now cp.pr_pid
            | Fault.Exhausted ->
              emit
                (Trace.Faulted
                   {
                     time = now;
                     fault =
                       Fault.Retries_exhausted
                         { process = cp.pr_pid; mode = cm.cm_mid };
                   });
              degrade now cp.pr_pid
            | Fault.Proceed { overrun } ->
              let reconfiguration =
                if not reconfigure then None
                else begin
                  let cf = Option.get cp.pr_conf in
                  let target = cf.cf_ids.(r_target_ix) in
                  ps.conf_ix <- r_target_ix;
                  ps.conf_id <- Some target;
                  Some (target, r_latency)
                end
              in
              let consumed = consume_mode ix m_ix cm in
              let payload =
                if cm.cm_inherit then first_payload consumed else None
              in
              let reconf_latency =
                match reconfiguration with None -> 0 | Some (_, l) -> l
              in
              reconf_time := !reconf_time + reconf_latency;
              let extra = Option.value ~default:0 overrun in
              let latency = reconf_latency + lat.(ix).(m_ix) + extra in
              ps.busy <- true;
              if ps.budget > 0 then ps.budget <- ps.budget - 1;
              incr firings;
              emit
                (Trace.Started
                   {
                     time = now;
                     process = cp.pr_pid;
                     mode = cm.cm_mid;
                     reconfiguration;
                   });
              (match overrun with
              | Some extra ->
                emit
                  (Trace.Faulted
                     {
                       time = now;
                       fault =
                         Fault.Latency_overrun
                           { process = cp.pr_pid; mode = cm.cm_mid; extra };
                     })
              | None -> ());
              ps.slot_mode <- m_ix;
              ps.slot_started <- now;
              ps.slot_payload <- payload;
              ps.slot_consumed <- consumed;
              Heap.Int_heap.push ~time:(now + latency) (ev_complete ix) heap
          end
        end
      end
    done
  in
  let inject_token time k =
    let cid, tok = Option.get !inj_pool.(k) in
    let outcome =
      match fstate with
      | None -> Fault.Deliver
      | Some fs -> Fault.on_token fs ~time cid tok
    in
    let deliver tok =
      (match I.Channel_id.Tbl.find_opt plan.chan_index cid with
      | Some ix -> chan_write ix tok
      | None ->
        (* the interpreter's [Semantics.inject] raises [Not_found] on a
           channel the model does not declare *)
        ignore (Spi.Model.get_channel cid plan.model));
      emit (Trace.Injected { time; channel = cid; token = tok })
    in
    match outcome with
    | Fault.Deliver -> deliver tok
    | Fault.Dropped ->
      emit
        (Trace.Faulted
           { time; fault = Fault.Token_dropped { channel = cid; token = tok } })
    | Fault.Corrupted tok' ->
      emit
        (Trace.Faulted
           {
             time;
             fault = Fault.Token_corrupted { channel = cid; token = tok' };
           });
      deliver tok'
    | Fault.Duplicated ->
      emit
        (Trace.Faulted
           {
             time;
             fault = Fault.Token_duplicated { channel = cid; token = tok };
           });
      deliver tok;
      deliver tok
  in
  let complete time ix =
    let cp = plan.procs.(ix) in
    let ps = pstates.(ix) in
    let m_ix = ps.slot_mode in
    let cm = cp.pr_modes.(m_ix) in
    let ns = nprod.(ix).(m_ix) in
    let nprods = Array.length cm.cm_produces in
    let rec produce k =
      if k = nprods then []
      else begin
        let pr = cm.cm_produces.(k) in
        let n = ns.(k) in
        let tok = Spi.Token.make ~tags:pr.p_tags ?payload:ps.slot_payload () in
        let toks = Spi.Token.replicate n tok in
        if n > 0 then
          if pr.p_ix < 0 then ignore (Spi.Model.get_channel pr.p_cid plan.model)
          else List.iter (fun t -> chan_write pr.p_ix t) toks;
        (pr.p_cid, toks) :: produce (k + 1)
      end
    in
    let produced = produce 0 in
    if ps.recover_at = 0 then ps.busy <- false;
    let firing =
      {
        Spi.Semantics.process = cp.pr_pid;
        mode = cm.cm_mid;
        consumed = ps.slot_consumed;
        produced;
      }
    in
    emit
      (Trace.Completed
         { time; started_at = ps.slot_started; process = cp.pr_pid; firing });
    ps.slot_consumed <- []
  in
  let recover time ix =
    let ps = pstates.(ix) in
    if ps.recover_at <= time then begin
      ps.recover_at <- 0;
      ps.busy <- false
    end
  in
  let crash time k =
    let pid = crash_pool.(k) in
    match fstate with
    | Some fs when not (Fault.crashed fs pid) ->
      Fault.mark_crashed fs pid;
      Fault.note_failure fs pid;
      emit (Trace.Faulted { time; fault = Fault.Crashed { process = pid } });
      degrade time pid
    | Some _ | None -> ()
  in
  let now = ref 0 in
  let outcome = ref Engine.Quiescent in
  try_start 0;
  let rec loop () =
    if !firings > limits.Engine.max_firings then
      outcome := Engine.Firing_limit_reached
    else if Heap.Int_heap.is_empty heap then begin
      emit (Trace.Quiescent { time = !now });
      outcome := Engine.Quiescent
    end
    else begin
      let time = Heap.Int_heap.min_time heap in
      if time > limits.Engine.max_time then
        outcome := Engine.Time_limit_reached
      else begin
        let v = Heap.Int_heap.min_value heap in
        Heap.Int_heap.drop_min heap;
        now := time;
        (match v land 3 with
        | 0 -> inject_token time (v lsr 2)
        | 1 -> complete time (v lsr 2)
        | 2 -> recover time (v lsr 2)
        | _ -> crash time (v lsr 2));
        try_start time;
        loop ()
      end
    end
  in
  loop ();
  let trace = List.rev !trace in
  (* The final channel contents, rebuilt through the reference
     semantics' own constructors. *)
  let final_state = ref (Spi.Semantics.initial plan.model) in
  Array.iteri
    (fun i cs ->
      let cid = plan.chan_ids.(i) in
      final_state := Spi.Semantics.clear_channel cid !final_state;
      for k = 0 to cs.count - 1 do
        let tok = cs.buf.((cs.head + k) mod Array.length cs.buf) in
        final_state := Spi.Semantics.inject plan.model cid tok !final_state
      done)
    chans;
  Obs.Metric.incr m_compiled_runs;
  Engine.record_metrics ~start_ns trace;
  {
    Engine.trace;
    final_state = !final_state;
    end_time = !now;
    outcome = !outcome;
    firings = !firings;
    reconfiguration_time = !reconf_time;
  }
