module I = Spi.Ids

type suggestion = { chan : I.Channel_id.t; observed : int; capacity : int }

let suggest ?(margin = 0) ?policy ?configurations ~stimuli model =
  if margin < 0 then invalid_arg "Sizing.suggest: negative margin";
  (* keyed by channel ids directly — no per-lookup string conversion *)
  let high = ref I.Channel_id.Map.empty in
  List.iter
    (fun stims ->
      let result = Engine.run ?policy ?configurations ~stimuli:stims model in
      let stats = Stats.of_result model result in
      List.iter
        (fun (c : Stats.channel_stats) ->
          let current =
            Option.value ~default:0 (I.Channel_id.Map.find_opt c.Stats.chan !high)
          in
          high :=
            I.Channel_id.Map.add c.Stats.chan
              (max current c.Stats.high_water)
              !high)
        stats.Stats.channels)
    stimuli;
  List.filter_map
    (fun chan ->
      match Spi.Chan.kind chan with
      | Spi.Chan.Register -> None
      | Spi.Chan.Queue ->
        let cid = Spi.Chan.id chan in
        let observed =
          Option.value ~default:0 (I.Channel_id.Map.find_opt cid !high)
        in
        Some { chan = cid; observed; capacity = max 1 (observed + margin) })
    (Spi.Model.channels model)

let apply suggestions model =
  let capacity_of cid =
    List.find_map
      (fun s -> if I.Channel_id.equal s.chan cid then Some s.capacity else None)
      suggestions
  in
  let channels =
    List.map
      (fun chan ->
        match Spi.Chan.kind chan, capacity_of (Spi.Chan.id chan) with
        | Spi.Chan.Queue, Some capacity ->
          Spi.Chan.queue ~initial:(Spi.Chan.initial chan) ~capacity
            (Spi.Chan.id chan)
        | (Spi.Chan.Queue | Spi.Chan.Register), _ -> chan)
      (Spi.Model.channels model)
  in
  Spi.Model.build_exn ~processes:(Spi.Model.processes model) ~channels

let verify ?policy ?configurations ~stimuli model =
  try
    List.iter
      (fun stims ->
        ignore
          (Engine.run ?policy ?configurations ~overflow:Spi.Semantics.Reject
             ~stimuli:stims model))
      stimuli;
    Ok ()
  with Spi.Semantics.Channel_overflow cid -> Error cid

let pp_suggestion ppf s =
  Format.fprintf ppf "%a: observed %d -> capacity %d" I.Channel_id.pp s.chan
    s.observed s.capacity
