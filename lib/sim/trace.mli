(** Execution traces.

    The engine records every observable step; checkers (timing
    constraints, the video system's invalid-image property, test
    assertions) work over the finished trace. *)

type entry =
  | Injected of { time : int; channel : Spi.Ids.Channel_id.t; token : Spi.Token.t }
  | Started of {
      time : int;
      process : Spi.Ids.Process_id.t;
      mode : Spi.Ids.Mode_id.t;
      reconfiguration : (Spi.Ids.Config_id.t * int) option;
          (** configuration switched to, and its latency, when this
              execution triggered one *)
    }
  | Completed of {
      time : int;  (** completion instant *)
      started_at : int;
      process : Spi.Ids.Process_id.t;
      firing : Spi.Semantics.firing;
    }
  | Faulted of { time : int; fault : Fault.event }
      (** an injected fault fired, a retry/backoff was taken, or the
          watchdog degraded a process to its fallback configuration *)
  | Quiescent of { time : int }
      (** no process activable and no pending event: simulation ended *)

type t = entry list
(** Chronological order. *)

val pp_entry : Format.formatter -> entry -> unit
val pp : Format.formatter -> t -> unit

val completions : ?process:Spi.Ids.Process_id.t -> t -> entry list
val starts : ?process:Spi.Ids.Process_id.t -> t -> entry list

val reconfigurations : t -> (int * Spi.Ids.Process_id.t * Spi.Ids.Config_id.t * int) list
(** [(start_time, process, configuration, latency)] for every execution
    that triggered a reconfiguration. *)

val faults : t -> (int * Fault.event) list
(** Every fault event, chronologically. *)

val degradations :
  t ->
  (int
  * Spi.Ids.Process_id.t
  * Spi.Ids.Config_id.t option
  * Spi.Ids.Config_id.t
  * int)
  list
(** [(time, process, from, to, t_conf)] for every watchdog-forced
    fallback reconfiguration. *)

val tokens_produced_on : Spi.Ids.Channel_id.t -> t -> (int * Spi.Token.t) list
(** [(completion_time, token)] for every token put on the channel. *)

val end_time : t -> int
(** Time of the last entry (0 for the empty trace). *)

val firing_count : t -> int
(** Number of completed executions. *)
