(** Compiled family-based simulation.

    The interpreted {!Family} engine executes each sub-family through
    {!Spi.Semantics} — persistent-map channel states, closure-based
    guard checks, list scans per event.  This module runs the same
    algorithm on {!Compile}-style flat tables (shared with that engine
    through {!Crt}): dense channel indexes into ring buffers, compiled
    guards, an int-coded {!Heap.Int_heap} event loop, and the
    presence-condition bookkeeping (split detection, fork transplants,
    narrowing) hoisted out of the hot path.

    The contract is unchanged and engine-independent: the report is a
    {!Family.report}, and every configuration's result is byte-identical
    to what {!Engine.run}, {!Compile.run} and interpreted {!Family.run}
    produce for it — the four-way differential harness in
    [test/test_family_compiled.ml] enforces this across generated
    systems, fault plans, seeds, job counts and split policies.

    Like {!Family.run}, degradation plans are rejected and shared ids
    must not collide with site prefixes ([Invalid_argument]). *)

type plan
(** Compiled variant space: presence space, site list, and
    demand-compiled per-representative tables (flattened model, initial
    state, flat channel/process tables).  Thread-safe: worker domains
    and concurrent runs may share one plan. *)

val plan : ?linkage:Variants.Variant_space.linkage -> Variants.System.t -> plan
(** Lowers the system's variant space for family execution.  Site
    prefixes are validated here, once, rather than per run.

    @raise Invalid_argument on prefix collisions (see {!Family.run}). *)

val plan_key : ?linkage:Variants.Variant_space.linkage -> Variants.System.t -> string
(** The key {!plan} would assign, without compiling — hex digest over
    {!Variants.Canonical.of_system} and the linkage.  Equal keys mean
    the compiled plans are interchangeable. *)

val key : plan -> string
(** Cache key of this plan (see {!plan_key}). *)

val system : plan -> Variants.System.t
val configurations : plan -> int

val run :
  ?policy:Engine.policy ->
  ?limits:Engine.limits ->
  ?overflow:Spi.Semantics.overflow ->
  ?stimuli:Engine.stimulus list ->
  ?firing_budget:(Spi.Ids.Process_id.t * int) list ->
  ?faults:Fault.plan ->
  ?jobs:int ->
  ?split:[ `Narrow | `Full ] ->
  plan ->
  Family.report
(** Simulates every configuration in one featured pass on the compiled
    tables.  Parameters have {!Family.run}'s semantics exactly,
    including [`Narrow] split narrowing (the default) and [jobs]-way
    work stealing over {!Synth.Par}; results are identical for every
    job count and split policy.

    Shares the [sim.family.*] metrics with the interpreted engine and
    additionally bumps [sim.family.compiled_runs] and records the
    [sim.family.compiled_run_ns] span.

    @raise Invalid_argument on degradation plans; exceptions a
    per-configuration run would raise propagate unchanged. *)
