module I = Spi.Ids

type observation = {
  mode : I.Mode_id.t;
  executions : int;
  latency : Interval.t;
  consumed : (I.Channel_id.t * Interval.t) list;
  produced : (I.Channel_id.t * Interval.t) list;
}

(* raw per-execution samples for one process *)
type sample = {
  s_mode : I.Mode_id.t;
  s_latency : int;
  s_consumed : (I.Channel_id.t * int) list;
  s_produced : (I.Channel_id.t * int) list;
}

let samples (result : Engine.result) pid =
  (* reconfiguration latency per (process, start time), to subtract *)
  let reconf = Hashtbl.create 8 in
  List.iter
    (function
      | Trace.Started { time; process; reconfiguration = Some (_, latency); _ }
        when I.Process_id.equal process pid ->
        Hashtbl.replace reconf time latency
      | Trace.Started _ | Trace.Injected _ | Trace.Completed _
      | Trace.Faulted _ | Trace.Quiescent _ -> ())
    result.Engine.trace;
  List.filter_map
    (function
      | Trace.Completed { time; started_at; process; firing }
        when I.Process_id.equal process pid ->
        let reconf_latency =
          Option.value ~default:0 (Hashtbl.find_opt reconf started_at)
        in
        Some
          {
            s_mode = firing.Spi.Semantics.mode;
            s_latency = time - started_at - reconf_latency;
            s_consumed =
              List.map
                (fun (c, toks) -> (c, List.length toks))
                firing.Spi.Semantics.consumed;
            s_produced =
              List.map
                (fun (c, toks) -> (c, List.length toks))
                firing.Spi.Semantics.produced;
          }
      | Trace.Completed _ | Trace.Injected _ | Trace.Started _
      | Trace.Faulted _ | Trace.Quiescent _ -> None)
    result.Engine.trace

let hull_of_counts entries =
  (* entries: (channel, count) over many executions -> per-channel hull *)
  let table = Hashtbl.create 8 in
  List.iter
    (fun (cid, n) ->
      let key = I.Channel_id.to_string cid in
      let current = Hashtbl.find_opt table key in
      let interval =
        match current with
        | None -> (cid, Interval.point n)
        | Some (_, i) -> (cid, Interval.join i (Interval.point n))
      in
      Hashtbl.replace table key interval)
    entries;
  Hashtbl.fold (fun _ v acc -> v :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> I.Channel_id.compare a b)

let observe result pid =
  let by_mode = Hashtbl.create 8 in
  List.iter
    (fun s ->
      let key = I.Mode_id.to_string s.s_mode in
      Hashtbl.replace by_mode key
        (s :: Option.value ~default:[] (Hashtbl.find_opt by_mode key)))
    (samples result pid);
  Hashtbl.fold
    (fun _ samples acc ->
      match samples with
      | [] -> acc
      | first :: _ ->
        let latency =
          List.fold_left
            (fun acc s -> Interval.join acc (Interval.point s.s_latency))
            (Interval.point first.s_latency)
            samples
        in
        {
          mode = first.s_mode;
          executions = List.length samples;
          latency;
          consumed = hull_of_counts (List.concat_map (fun s -> s.s_consumed) samples);
          produced = hull_of_counts (List.concat_map (fun s -> s.s_produced) samples);
        }
        :: acc)
    by_mode []
  |> List.sort (fun a b -> I.Mode_id.compare a.mode b.mode)

let refine_process result proc =
  let observations = observe result (Spi.Process.id proc) in
  let refined_modes =
    List.map
      (fun mode ->
        match
          List.find_opt
            (fun o -> I.Mode_id.equal o.mode (Spi.Mode.id mode))
            observations
        with
        | None -> mode
        | Some o -> (
          match Interval.meet (Spi.Mode.latency mode) o.latency with
          | Some narrowed -> Spi.Mode.with_latency narrowed mode
          | None -> mode (* disjoint: flagged by [suspicious] *)))
      (Spi.Process.modes proc)
  in
  Spi.Process.with_modes refined_modes proc

let refine_model result model =
  List.fold_left
    (fun m proc -> Spi.Model.replace_process (refine_process result proc) m)
    model (Spi.Model.processes model)

let suspicious result model =
  List.concat_map
    (fun proc ->
      let pid = Spi.Process.id proc in
      List.filter_map
        (fun o ->
          match Spi.Process.find_mode o.mode proc with
          | None -> None
          | Some mode ->
            let declared = Spi.Mode.latency mode in
            if Interval.subset o.latency declared then None
            else Some (pid, o.mode, declared, o.latency))
        (observe result pid))
    (Spi.Model.processes model)
