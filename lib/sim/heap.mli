(** A minimal binary min-heap keyed by [(time, sequence)].

    The simulator orders events by time, breaking ties by insertion
    sequence so simultaneous events process deterministically in
    schedule order. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val push : time:int -> 'a -> 'a t -> unit
(** Inserts with the next sequence number. *)

val pop_min : 'a t -> (int * 'a) option
(** Removes and returns the earliest event ([None] when empty). *)

val peek_time : 'a t -> int option

val copy : 'a t -> 'a t
(** Independent clone: pushes and pops on either heap leave the other
    untouched, and the clone continues the original's sequence counter
    so FIFO tie-breaks stay aligned across the fork.  Entry values are
    shared (they are treated as immutable).  {!Family} forks the event
    heap at sub-family split points with this. *)

(** The same heap specialized to [int] payloads, stored flat in one
    [int array] — pushing allocates nothing once the backing array has
    reached the run's high-water mark.  Used by the compiled engine
    ({!Compile}), whose events are int-coded. *)
module Int_heap : sig
  type t

  val create : unit -> t
  val is_empty : t -> bool
  val size : t -> int

  val push : time:int -> int -> t -> unit
  (** Inserts with the next sequence number, exactly like {!val:push}. *)

  val min_time : t -> int
  (** Time of the earliest event.  Undefined when empty. *)

  val min_value : t -> int
  (** Payload of the earliest event.  Undefined when empty. *)

  val drop_min : t -> unit
  (** Removes the earliest event.  Undefined when empty. *)

  val copy : t -> t
  (** Independent clone, exactly like {!val:copy} on the generic heap:
      the sequence counter carries over so FIFO tie-breaks stay aligned
      across a fork.  {!Family_compiled} forks the int-coded event heap
      at sub-family split points with this. *)
end
