module I = Spi.Ids

type process_stats = {
  proc : I.Process_id.t;
  firings : int;
  busy_time : int;
  utilization : float;
  reconfigurations : int;
  reconfiguration_time : int;
  retries : int;
  degraded : bool;
}

type channel_stats = {
  chan : I.Channel_id.t;
  tokens_through : int;
  high_water : int;
  final_occupancy : int;
}

type fault_stats = {
  token_faults : int;
  transient_failures : int;
  retries_exhausted : int;
  crashes : int;
  latency_overruns : int;
  reconfiguration_failures : int;
  degradations : int;
}

let no_faults =
  {
    token_faults = 0;
    transient_failures = 0;
    retries_exhausted = 0;
    crashes = 0;
    latency_overruns = 0;
    reconfiguration_failures = 0;
    degradations = 0;
  }

type t = {
  processes : process_stats list;
  channels : channel_stats list;
  makespan : int;
  total_firings : int;
  faults : fault_stats;
}

let of_result model (result : Engine.result) =
  let trace = result.Engine.trace in
  let makespan = result.Engine.end_time in
  (* per-process accumulation *)
  let busy = Hashtbl.create 16 and fires = Hashtbl.create 16 in
  let reconfs = Hashtbl.create 16 and reconf_time = Hashtbl.create 16 in
  let bump table pid v =
    let key = I.Process_id.to_string pid in
    Hashtbl.replace table key (v + Option.value ~default:0 (Hashtbl.find_opt table key))
  in
  (* per-channel occupancy events: (time, plus_first, delta) *)
  let events = Hashtbl.create 16 in
  let push_event cid time delta =
    let key = I.Channel_id.to_string cid in
    Hashtbl.replace events key
      ((time, delta) :: Option.value ~default:[] (Hashtbl.find_opt events key))
  in
  let retries = Hashtbl.create 16 and degraded_procs = Hashtbl.create 16 in
  let fstats = ref no_faults in
  List.iter
    (fun entry ->
      match entry with
      | Trace.Injected { time; channel; _ } -> push_event channel time 1
      | Trace.Started { process; reconfiguration; _ } -> (
        match reconfiguration with
        | None -> ()
        | Some (_, latency) ->
          bump reconfs process 1;
          bump reconf_time process latency)
      | Trace.Completed { time; started_at; process; firing } ->
        bump fires process 1;
        bump busy process (time - started_at);
        List.iter
          (fun (cid, toks) -> push_event cid started_at (-List.length toks))
          firing.Spi.Semantics.consumed;
        List.iter
          (fun (cid, toks) -> push_event cid time (List.length toks))
          firing.Spi.Semantics.produced
      | Trace.Faulted { fault; _ } ->
        (* corrupt/duplicate deliveries are followed by their own
           Injected entries, so channel occupancy needs nothing here *)
        let f = !fstats in
        fstats :=
          (match fault with
          | Fault.Token_dropped _ | Fault.Token_corrupted _
          | Fault.Token_duplicated _ ->
            { f with token_faults = f.token_faults + 1 }
          | Fault.Transient_failure { process; _ } ->
            bump retries process 1;
            { f with transient_failures = f.transient_failures + 1 }
          | Fault.Retries_exhausted _ ->
            { f with retries_exhausted = f.retries_exhausted + 1 }
          | Fault.Crashed _ -> { f with crashes = f.crashes + 1 }
          | Fault.Latency_overrun _ ->
            { f with latency_overruns = f.latency_overruns + 1 }
          | Fault.Reconfiguration_failed _ ->
            { f with
              reconfiguration_failures = f.reconfiguration_failures + 1
            }
          | Fault.Degraded { process; _ } ->
            Hashtbl.replace degraded_procs (I.Process_id.to_string process) ();
            { f with degradations = f.degradations + 1 })
      | Trace.Quiescent _ -> ())
    trace;
  let find table pid =
    Option.value ~default:0 (Hashtbl.find_opt table (I.Process_id.to_string pid))
  in
  let processes =
    List.map
      (fun proc ->
        let pid = Spi.Process.id proc in
        let busy_time = find busy pid in
        {
          proc = pid;
          firings = find fires pid;
          busy_time;
          utilization =
            (if makespan = 0 then 0.
             else float_of_int busy_time /. float_of_int makespan);
          reconfigurations = find reconfs pid;
          reconfiguration_time = find reconf_time pid;
          retries = find retries pid;
          degraded = Hashtbl.mem degraded_procs (I.Process_id.to_string pid);
        })
      (Spi.Model.processes model)
  in
  let channels =
    List.map
      (fun chan ->
        let cid = Spi.Chan.id chan in
        let raw =
          Option.value ~default:[]
            (Hashtbl.find_opt events (I.Channel_id.to_string cid))
        in
        (* chronological; at equal times apply arrivals before removals
           so the high-water mark is conservative *)
        let ordered =
          List.sort
            (fun (t1, d1) (t2, d2) ->
              match Int.compare t1 t2 with
              | 0 -> Int.compare d2 d1
              | c -> c)
            raw
        in
        let initial = List.length (Spi.Chan.initial chan) in
        let through =
          List.fold_left (fun acc (_, d) -> if d > 0 then acc + d else acc) 0 raw
        in
        let high_water =
          match Spi.Chan.kind chan with
          | Spi.Chan.Register ->
            (* destructive write, sampling read: occupancy never
               exceeds one *)
            if initial > 0 || through > 0 then 1 else 0
          | Spi.Chan.Queue ->
            let _, high =
              List.fold_left
                (fun (cur, high) (_, d) ->
                  let cur = cur + d in
                  (cur, max high cur))
                (initial, initial) ordered
            in
            high
        in
        {
          chan = cid;
          tokens_through = through;
          high_water;
          final_occupancy =
            Spi.Semantics.tokens_available result.Engine.final_state cid;
        })
      (Spi.Model.channels model)
  in
  {
    processes;
    channels;
    makespan;
    total_firings = result.Engine.firings;
    faults = !fstats;
  }

let process pid t =
  List.find_opt (fun p -> I.Process_id.equal p.proc pid) t.processes

let channel cid t =
  List.find_opt (fun c -> I.Channel_id.equal c.chan cid) t.channels

let total_faults f =
  f.token_faults + f.transient_failures + f.retries_exhausted + f.crashes
  + f.latency_overruns + f.reconfiguration_failures + f.degradations

let pp_fault_stats ppf f =
  Format.fprintf ppf
    "faults: %d token, %d transient (%d exhausted), %d crashes, %d overruns, \
     %d reconf failures, %d degradations"
    f.token_faults f.transient_failures f.retries_exhausted f.crashes
    f.latency_overruns f.reconfiguration_failures f.degradations

let pp ppf t =
  Format.fprintf ppf "@[<v>makespan %d, %d firings@," t.makespan t.total_firings;
  if total_faults t.faults > 0 then
    Format.fprintf ppf "%a@," pp_fault_stats t.faults;
  List.iter
    (fun p ->
      Format.fprintf ppf "%a: %d firings, busy %d (%.0f%%), %d reconfs (+%d)%s%s@,"
        I.Process_id.pp p.proc p.firings p.busy_time (100. *. p.utilization)
        p.reconfigurations p.reconfiguration_time
        (if p.retries > 0 then Format.sprintf ", %d retries" p.retries else "")
        (if p.degraded then " [degraded]" else ""))
    t.processes;
  List.iter
    (fun c ->
      Format.fprintf ppf "%a: %d through, high-water %d, final %d@,"
        I.Channel_id.pp c.chan c.tokens_through c.high_water c.final_occupancy)
    t.channels;
  Format.fprintf ppf "@]"
