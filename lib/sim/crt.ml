(* Shared runtime of the compiled engines: ring-buffered channel state,
   closure-free guard predicates over channel indexes, and the int-coded
   event scheme.  {!Compile} (per-configuration) and {!Family_compiled}
   (family-based) both lower models onto these primitives. *)

(* Ring-buffered channel contents.  Registers keep at most one token
   (destructive write); queues are FIFO with amortized O(1) push/pop. *)
type cstate = {
  mutable buf : Spi.Token.t array;
  mutable head : int;
  mutable count : int;
}

let dummy_token = Spi.Token.plain

let make_chan init =
  let n = List.length init in
  let buf = Array.make (max 4 n) dummy_token in
  List.iteri (fun k tok -> buf.(k) <- tok) init;
  { buf; head = 0; count = n }

let copy_chan cs = { buf = Array.copy cs.buf; head = cs.head; count = cs.count }

let ring_grow cs =
  let cap = Array.length cs.buf in
  let buf = Array.make (2 * cap) dummy_token in
  for k = 0 to cs.count - 1 do
    buf.(k) <- cs.buf.((cs.head + k) mod cap)
  done;
  cs.buf <- buf;
  cs.head <- 0

let ring_push cs tok =
  if cs.count = Array.length cs.buf then ring_grow cs;
  cs.buf.((cs.head + cs.count) mod Array.length cs.buf) <- tok;
  cs.count <- cs.count + 1

let ring_pop cs =
  let tok = cs.buf.(cs.head) in
  cs.buf.(cs.head) <- dummy_token;
  cs.head <- (cs.head + 1) mod Array.length cs.buf;
  cs.count <- cs.count - 1;
  tok

let contents cs =
  List.init cs.count (fun k -> cs.buf.((cs.head + k) mod Array.length cs.buf))

let write ~register ~cap ~ids ~overflow chans ix tok =
  let cs = chans.(ix) in
  if register.(ix) then begin
    (* destructive write: the register holds the last token *)
    cs.buf.(0) <- tok;
    cs.head <- 0;
    cs.count <- 1
  end
  else begin
    let c = cap.(ix) in
    if c >= 0 && cs.count >= c then begin
      match overflow with
      | Spi.Semantics.Reject -> raise (Spi.Semantics.Channel_overflow ids.(ix))
      | Spi.Semantics.Drop_newest -> ()
    end
    else ring_push cs tok
  end

(* Activation guards over channel indexes.  A channel the model does not
   declare compiles to index -1: it holds no tokens and no tags, exactly
   like the interpreter's view of an absent channel. *)
type gpred =
  | G_true
  | G_false
  | G_num_at_least of int * int  (** channel index, threshold *)
  | G_first_has_tag of int * Spi.Tag.t
  | G_and of gpred * gpred
  | G_or of gpred * gpred
  | G_not of gpred

type crule = { guard : gpred; target : int  (** mode index; -1 unknown *) }

type ccons = {
  c_ix : int;  (** channel index; -1 when the model lacks the channel *)
  c_cid : Spi.Ids.Channel_id.t;
  c_rate : Interval.t;
}

type cprod = {
  p_ix : int;
  p_cid : Spi.Ids.Channel_id.t;
  p_rate : Interval.t;
  p_tags : Spi.Tag.Set.t;
}

let rec compile_pred ~ix_of = function
  | Spi.Predicate.True -> G_true
  | Spi.Predicate.False -> G_false
  | Spi.Predicate.Atom (Spi.Predicate.Num_at_least (cid, k)) ->
    G_num_at_least (ix_of cid, k)
  | Spi.Predicate.Atom (Spi.Predicate.First_has_tag (cid, tag)) ->
    G_first_has_tag (ix_of cid, tag)
  | Spi.Predicate.And (a, b) ->
    G_and (compile_pred ~ix_of a, compile_pred ~ix_of b)
  | Spi.Predicate.Or (a, b) ->
    G_or (compile_pred ~ix_of a, compile_pred ~ix_of b)
  | Spi.Predicate.Not a -> G_not (compile_pred ~ix_of a)

let rec eval chans = function
  | G_true -> true
  | G_false -> false
  | G_num_at_least (ix, k) -> (if ix < 0 then 0 else chans.(ix).count) >= k
  | G_first_has_tag (ix, tag) ->
    ix >= 0
    && chans.(ix).count > 0
    && Spi.Tag.Set.mem tag (Spi.Token.tags chans.(ix).buf.(chans.(ix).head))
  | G_and (a, b) -> eval chans a && eval chans b
  | G_or (a, b) -> eval chans a || eval chans b
  | G_not a -> not (eval chans a)

(* Event coding: [4*k] injection #k, [4*p+1] completion of process p,
   [4*p+2] recovery of process p, [4*k+3] scripted crash #k. *)
let ev_inject k = 4 * k
let ev_complete p = (4 * p) + 1
let ev_recover p = (4 * p) + 2
let ev_crash k = (4 * k) + 3
