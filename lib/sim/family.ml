module I = Spi.Ids
module P = Variants.Presence

type config_run = {
  index : int;
  assignment : Variants.Variant_space.assignment;
  result : Engine.result;
}

type leaf = { leaf_members : int list; leaf_makespan : int }

type report = {
  runs : config_run array;
  splits : int;
  subfamilies : int;
  executed_firings : int;
  shared_firings : int;
  leaves : leaf array;
}

(* ------------------------------------------------------------------ *)
(* Observability.                                                      *)
(* ------------------------------------------------------------------ *)

let m_runs = Obs.Registry.counter "sim.family.runs"
let m_configs = Obs.Registry.counter "sim.family.configs"
let m_splits = Obs.Registry.counter "sim.family.splits"
let m_subfamilies = Obs.Registry.counter "sim.family.subfamilies"
let m_shared_firings = Obs.Registry.counter "sim.family.shared_firings"
let m_configs_per_firing = Obs.Registry.histogram "sim.family.configs_per_firing"

(* ------------------------------------------------------------------ *)
(* Site prefixes.                                                      *)
(*                                                                     *)
(* [Flatten.flatten] names every element instantiated for a site        *)
(* "<site>.…" (nested prefixes compose), so the string prefix is how    *)
(* the family engine attributes state to a still-unresolved ("cold")    *)
(* site: cold-prefixed processes must not fire and cold-prefixed        *)
(* channels still hold their initial tokens in every member's run.      *)
(* ------------------------------------------------------------------ *)

let prefix_of site = I.Interface_id.to_string site ^ "."

let has_prefix id pfx =
  String.length id >= String.length pfx
  && String.sub id 0 (String.length pfx) = pfx

let cold_site_of cold id =
  List.find_opt (fun site -> has_prefix id (prefix_of site)) cold

let validate_prefixes system sites =
  let prefixes = List.map prefix_of sites in
  List.iteri
    (fun i p ->
      List.iteri
        (fun j q ->
          if i <> j && has_prefix q p then
            invalid_arg
              (Printf.sprintf
                 "Family.run: site prefix %S extends site prefix %S" q p))
        prefixes)
    prefixes;
  let check_shared what id =
    if List.exists (has_prefix id) prefixes then
      invalid_arg
        (Printf.sprintf
           "Family.run: shared %s id %S collides with a site prefix" what id)
  in
  List.iter
    (fun p -> check_shared "process" (I.Process_id.to_string (Spi.Process.id p)))
    (Variants.System.processes system);
  List.iter
    (fun c -> check_shared "channel" (I.Channel_id.to_string (Spi.Chan.id c)))
    (Variants.System.channels system)

(* ------------------------------------------------------------------ *)
(* Sub-family state.                                                   *)
(* ------------------------------------------------------------------ *)

(* The engine-visible slice of [Engine.process_state]: family runs take
   no abstract configurations, so there is no confcur/allowed/config. *)
type pstate = {
  mutable busy : bool;
  mutable budget : int option;
  mutable recover_at : int;
}

type event =
  | Inject of I.Channel_id.t * Spi.Token.t
  | Complete of completion
  | Recover of I.Process_id.t
  | Crash of I.Process_id.t

and completion = {
  proc : I.Process_id.t;
  mode : Spi.Mode.t;
  started_at : int;
  payload : int option;
  consumed : (I.Channel_id.t * Spi.Token.t list) list;
}

(* One sub-family: a presence condition plus one concrete execution on
   the representative configuration's flattened model.  Everything a
   per-configuration [Engine.run] would hold lives here, so forking a
   sub-family is copying this record. *)
type sub = {
  mutable members : P.t;
  rep : int;
  model : Spi.Model.t;
  mutable cold : I.Interface_id.t list;  (* site order *)
  mutable warm : I.Channel_id.Set.t;
      (* cold-site channels every member declares identically, carried
         live instead of splitting when the environment writes them *)
  mutable state : Spi.Semantics.state;
  proc_states : pstate array;
  proc_index : int I.Process_id.Map.t;
  heap : event Heap.t;
  fstate : Fault.state option;
  mutable trace : Trace.entry list;  (* reversed *)
  mutable firings : int;
  mutable now : int;
}

(* What a freshly (re)started task must do before entering the event
   loop: the root and probe-split siblings just sweep; a sibling forked
   on an environment injection into a site still owes itself the
   delivery its parent popped from the shared heap. *)
type pending = Sweep | Deliver of I.Channel_id.t * Spi.Token.t

type task = { sub : sub; start : pending }

type stats = {
  mutable splits : int;
  mutable subfamilies : int;
  mutable executed : int;
  mutable shared : int;
  mutable leaves : leaf list;
}

let run ?(policy = Engine.Typical) ?(limits = Engine.default_limits)
    ?(overflow = Spi.Semantics.Reject) ?(stimuli = []) ?(firing_budget = [])
    ?faults ?(linkage = []) ?(jobs = 1) ?(split = `Narrow) system =
  let narrow = split = `Narrow in
  let start_ns = Obs.Clock.now_ns () in
  (match faults with
  | Some p when p.Fault.degrade <> None ->
    invalid_arg
      "Family.run: degradation plans are not supported (flattened \
       per-configuration models have no configuration to fall back to)"
  | Some _ | None -> ());
  let space = P.space ~linkage system in
  let n = P.size space in
  let sites = P.sites space in
  validate_prefixes system sites;
  (* Per-configuration models and initial states, built on demand and
     shared across domains.  An explicit mutex (not [Lazy]) because
     worker domains race on first touch. *)
  let cache_lock = Mutex.create () in
  let models = Array.make n None in
  let inits = Array.make n None in
  let model_of i =
    Mutex.lock cache_lock;
    let m =
      match models.(i) with
      | Some m -> m
      | None ->
        let m =
          Variants.Flatten.flatten system
            (Variants.Variant_space.to_choice (P.assignment space i))
        in
        models.(i) <- Some m;
        m
    in
    Mutex.unlock cache_lock;
    m
  in
  let init_of i =
    let m = model_of i in
    Mutex.lock cache_lock;
    let s =
      match inits.(i) with
      | Some s -> s
      | None ->
        let s = Spi.Semantics.initial m in
        inits.(i) <- Some s;
        s
    in
    Mutex.unlock cache_lock;
    s
  in
  let budget_of pid p =
    match
      List.find_opt (fun (q, _) -> I.Process_id.equal q pid) firing_budget
    with
    | Some (_, b) -> Some b
    | None ->
      if I.Channel_id.Set.is_empty (Spi.Process.inputs p) then Some 0 else None
  in
  let fresh_pstates processes =
    let index =
      List.fold_left
        (fun (i, acc) p ->
          (i + 1, I.Process_id.Map.add (Spi.Process.id p) i acc))
        (0, I.Process_id.Map.empty) processes
      |> snd
    in
    (index, processes)
  in
  let choose_rate = Engine.pick policy in
  let results = Array.make n None in
  (* ---------------- root sub-family ---------------- *)
  let root =
    let model = model_of 0 in
    let processes = Spi.Model.processes model in
    let proc_index, _ = fresh_pstates processes in
    let proc_states =
      Array.of_list
        (List.map
           (fun p ->
             {
               busy = false;
               budget = budget_of (Spi.Process.id p) p;
               recover_at = 0;
             })
           processes)
    in
    let heap = Heap.create () in
    List.iter
      (fun s ->
        Heap.push ~time:s.Engine.at (Inject (s.Engine.channel, s.Engine.token))
          heap)
      stimuli;
    let fstate = Option.map Fault.start faults in
    (match fstate with
    | None -> ()
    | Some fs ->
      List.iter
        (fun (pid, at) -> Heap.push ~time:at (Crash pid) heap)
        (Fault.crash_schedule fs));
    {
      members = P.full space;
      rep = 0;
      model;
      cold = sites;
      warm = I.Channel_id.Set.empty;
      state = init_of 0;
      proc_states;
      proc_index;
      heap;
      fstate;
      trace = [];
      firings = 0;
      now = 0;
    }
  in
  (* ---------------- per-sub-family machinery ---------------- *)
  let pstate c pid = c.proc_states.(I.Process_id.Map.find pid c.proc_index) in
  let emit c e = c.trace <- e :: c.trace in
  let process_crashed c pid =
    match c.fstate with Some fs -> Fault.crashed fs pid | None -> false
  in
  (* Fork [c] at site [site]: one part per cluster the members select
     there, ordered by smallest member.  [c] keeps the first part (its
     representative is the global minimum, hence in the first part);
     every other part gets a fresh sub on its own representative's
     model, with the shared execution so far transplanted in.  The site
     leaves [cold] for all parts. *)
  let split stats offer ~sibling_start c site =
    let old_cold = c.cold in
    let is_old_cold id = Option.is_some (cold_site_of old_cold id) in
    (* Warm channels live inside cold sites but already carry the shared
       history (identical declaration in every member), so they
       transplant like resolved channels. *)
    let keeps_initial cid =
      (not (I.Channel_id.Set.mem cid c.warm))
      && is_old_cold (I.Channel_id.to_string cid)
    in
    let parts = P.partition_at space c.members site in
    let new_cold =
      List.filter (fun s -> not (I.Interface_id.equal s site)) old_cold
    in
    match parts with
    | [] -> assert false (* members are never empty *)
    | (_, first_part) :: rest ->
      stats.splits <- stats.splits + List.length rest;
      List.iter
        (fun (_, part) ->
          let rep_b =
            match P.first part with Some i -> i | None -> assert false
          in
          let model_b = model_of rep_b in
          (* Channels of resolved sites and of the shared skeleton carry
             the shared history; channels of sites cold until this split
             still hold their initial tokens in every member's own run,
             so the sibling's fresh initial state is already right for
             them. *)
          let state_b =
            List.fold_left
              (fun st ch ->
                let cid = Spi.Chan.id ch in
                if keeps_initial cid then st
                else
                  let st = Spi.Semantics.clear_channel cid st in
                  List.fold_left
                    (fun st tok -> Spi.Semantics.inject model_b cid tok st)
                    st
                    (Spi.Semantics.contents c.state cid))
              (init_of rep_b)
              (Spi.Model.channels model_b)
          in
          let processes_b = Spi.Model.processes model_b in
          let proc_index_b, _ = fresh_pstates processes_b in
          let proc_states_b =
            Array.of_list
              (List.map
                 (fun p ->
                   let pid = Spi.Process.id p in
                   if is_old_cold (I.Process_id.to_string pid) then
                     { busy = false; budget = budget_of pid p; recover_at = 0 }
                   else
                     let ps = pstate c pid in
                     {
                       busy = ps.busy;
                       budget = ps.budget;
                       recover_at = ps.recover_at;
                     })
                 processes_b)
          in
          let sub_b =
            {
              members = part;
              rep = rep_b;
              model = model_b;
              cold = new_cold;
              warm = c.warm;
              state = state_b;
              proc_states = proc_states_b;
              proc_index = proc_index_b;
              heap = Heap.copy c.heap;
              fstate = Option.map Fault.copy c.fstate;
              trace = c.trace;
              firings = c.firings;
              now = c.now;
            }
          in
          offer { sub = sub_b; start = sibling_start })
        rest;
      c.members <- first_part;
      c.cold <- new_cold
  in
  (* Would any variant of cold site [site] start a process right now, in
     the configurations of [part]?  Answered on the part
     representative's own model, with the site's channels read from that
     model's initial state (per-member exact: nothing has touched them)
     and all shared/resolved channels read from the live state. *)
  let site_hot c site (_, part) =
    let rep_b = match P.first part with Some i -> i | None -> assert false in
    let model_b = model_of rep_b in
    let init_b = init_of rep_b in
    let pfx = prefix_of site in
    let cold_owned cid =
      (not (I.Channel_id.Set.mem cid c.warm))
      && Option.is_some (cold_site_of c.cold (I.Channel_id.to_string cid))
    in
    let view =
      {
        Spi.Predicate.tokens_available =
          (fun cid ->
            if cold_owned cid then Spi.Semantics.tokens_available init_b cid
            else Spi.Semantics.tokens_available c.state cid);
        first_tags =
          (fun cid ->
            if cold_owned cid then Spi.Semantics.first_tags init_b cid
            else Spi.Semantics.first_tags c.state cid);
      }
    in
    List.exists
      (fun p ->
        let pid = Spi.Process.id p in
        has_prefix (I.Process_id.to_string pid) pfx
        && budget_of pid p <> Some 0
        && (not (process_crashed c pid))
        && Spi.Activation.enabled view (Spi.Process.activation p) <> [])
      (Spi.Model.processes model_b)
  in
  (* Resolve every cold site whose variants could act: split there, then
     re-probe (the split may leave other sites hot for the remaining
     members).  Must run before every scheduling sweep — otherwise the
     sweep would fire the representative's own variant while the
     sub-family still covers configurations with a different one. *)
  let rec settle stats offer c =
    let hot =
      List.find_opt
        (fun site ->
          List.exists (site_hot c site) (P.partition_at space c.members site))
        c.cold
    in
    match hot with
    | None -> ()
    | Some site ->
      split stats offer ~sibling_start:Sweep c site;
      settle stats offer c
  in
  (* One scheduling sweep, [Engine.run]'s [try_start] minus cold-site
     processes — the probe just proved none of them can act, in any
     member configuration, so skipping them changes nothing and keeps
     the sweep identical to each member's own. *)
  let try_start stats c now =
    List.iter
      (fun p ->
        let pid = Spi.Process.id p in
        if not (Option.is_some (cold_site_of c.cold (I.Process_id.to_string pid)))
        then begin
          let ps = pstate c pid in
          let may_fire =
            (not ps.busy) && ps.budget <> Some 0 && not (process_crashed c pid)
          in
          if may_fire then
            match Spi.Semantics.enabled_rule c.model c.state pid with
            | None -> ()
            | Some rule -> (
              match
                Spi.Process.find_mode (Spi.Activation.target_mode rule) p
              with
              | None -> ()
              | Some mode -> (
                let mid = Spi.Mode.id mode in
                let attempt =
                  match c.fstate with
                  | None -> Fault.Proceed { overrun = None }
                  | Some fs -> Fault.on_attempt fs ~time:now pid mid
                in
                match attempt with
                | Fault.Retry { retry; backoff } ->
                  emit c
                    (Trace.Faulted
                       {
                         time = now;
                         fault =
                           Fault.Transient_failure
                             { process = pid; mode = mid; retry; backoff };
                       });
                  let until = now + max 1 backoff in
                  ps.busy <- true;
                  ps.recover_at <- until;
                  Heap.push ~time:until (Recover pid) c.heap
                | Fault.Exhausted ->
                  emit c
                    (Trace.Faulted
                       {
                         time = now;
                         fault =
                           Fault.Retries_exhausted { process = pid; mode = mid };
                       })
                | Fault.Proceed { overrun } ->
                  let state', consumed =
                    Spi.Semantics.consume ~choose_rate mode c.state
                  in
                  c.state <- state';
                  let payload = Spi.Semantics.inherited_payload mode consumed in
                  let extra = Option.value ~default:0 overrun in
                  let latency =
                    Engine.pick policy (Spi.Mode.latency mode) + extra
                  in
                  ps.busy <- true;
                  ps.budget <- Option.map (fun b -> b - 1) ps.budget;
                  c.firings <- c.firings + 1;
                  stats.executed <- stats.executed + 1;
                  let width = P.cardinal c.members in
                  if width > 1 then stats.shared <- stats.shared + 1;
                  Obs.Metric.observe m_configs_per_firing width;
                  emit c
                    (Trace.Started
                       { time = now; process = pid; mode = mid; reconfiguration = None });
                  (match overrun with
                  | Some extra ->
                    emit c
                      (Trace.Faulted
                         {
                           time = now;
                           fault =
                             Fault.Latency_overrun
                               { process = pid; mode = mid; extra };
                         })
                  | None -> ());
                  Heap.push ~time:(now + latency)
                    (Complete
                       { proc = pid; mode; started_at = now; payload; consumed })
                    c.heap))
        end)
      (Spi.Model.processes c.model)
  in
  (* Environment injection, [Engine.run]'s [inject_token] — but a token
     aimed inside a still-cold site resolves that site first: the
     variants there disagree on the target channel's very declaration,
     so the members must part ways before the write.  The fault draw
     happens after the fork, at the same stream position in every
     branch, exactly as each member's own run would draw it. *)
  (* Does every member of [c] declare [cid] with the same kind, capacity
     and initial contents?  Then a write into the still-cold site cannot
     distinguish the members, and the channel can be carried live
     ("warm") instead of forcing the site apart — the split happens
     later, only if a variant actually activates.  Checking one model
     per subtree-choice part covers every member, because a site's
     channels are a function of the subtree choice [partition_at]
     groups by. *)
  let narrowable c site cid =
    let decl_of part =
      let rep_b = match P.first part with Some i -> i | None -> assert false in
      Spi.Model.find_channel cid (model_of rep_b)
    in
    match P.partition_at space c.members site with
    | [] -> assert false (* members are never empty *)
    | (_, part0) :: rest -> (
      match decl_of part0 with
      | None -> false
      | Some ch0 ->
        let same ch =
          Spi.Chan.kind ch = Spi.Chan.kind ch0
          && Spi.Chan.capacity ch = Spi.Chan.capacity ch0
          && List.compare_lengths (Spi.Chan.initial ch) (Spi.Chan.initial ch0)
             = 0
          && List.for_all2 Spi.Token.equal (Spi.Chan.initial ch)
               (Spi.Chan.initial ch0)
        in
        List.for_all
          (fun (_, part) ->
            match decl_of part with Some ch -> same ch | None -> false)
          rest)
  in
  let rec handle_inject stats offer c time cid tok =
    let cold_target =
      if I.Channel_id.Set.mem cid c.warm then None
      else cold_site_of c.cold (I.Channel_id.to_string cid)
    in
    match cold_target with
    | Some site when narrow && narrowable c site cid ->
      c.warm <- I.Channel_id.Set.add cid c.warm;
      handle_inject stats offer c time cid tok
    | Some site ->
      split stats offer ~sibling_start:(Deliver (cid, tok)) c site;
      handle_inject stats offer c time cid tok
    | None -> (
      let outcome =
        match c.fstate with
        | None -> Fault.Deliver
        | Some fs -> Fault.on_token fs ~time cid tok
      in
      let deliver tok =
        c.state <- Spi.Semantics.inject ~overflow c.model cid tok c.state;
        emit c (Trace.Injected { time; channel = cid; token = tok })
      in
      match outcome with
      | Fault.Deliver -> deliver tok
      | Fault.Dropped ->
        emit c
          (Trace.Faulted
             { time; fault = Fault.Token_dropped { channel = cid; token = tok } })
      | Fault.Corrupted tok' ->
        emit c
          (Trace.Faulted
             {
               time;
               fault = Fault.Token_corrupted { channel = cid; token = tok' };
             });
        deliver tok'
      | Fault.Duplicated ->
        emit c
          (Trace.Faulted
             {
               time;
               fault = Fault.Token_duplicated { channel = cid; token = tok };
             });
        deliver tok;
        deliver tok)
  in
  (* Leaf: the sub-family ran to its outcome.  Every member gets the
     result its own [Engine.run] would have produced: the shared trace,
     and a final state that is the live state on shared/resolved
     channels plus the member's own initial tokens on channels of sites
     that never went hot. *)
  let finish stats c outcome =
    stats.subfamilies <- stats.subfamilies + 1;
    let trace = List.rev c.trace in
    let is_cold cid =
      (not (I.Channel_id.Set.mem cid c.warm))
      && Option.is_some (cold_site_of c.cold (I.Channel_id.to_string cid))
    in
    (* The deadline-relevant number of the whole leaf, computed once: the
       shared trace is every member's trace, so the last completion time
       is every member's makespan. *)
    let makespan =
      List.fold_left
        (fun acc entry ->
          match entry with
          | Trace.Completed { time; _ } -> max acc time
          | _ -> acc)
        0 c.trace
    in
    stats.leaves <-
      { leaf_members = P.indices c.members; leaf_makespan = makespan }
      :: stats.leaves;
    P.iter
      (fun i ->
        let final_state =
          if i = c.rep then c.state
          else
            let model_i = model_of i in
            List.fold_left
              (fun st ch ->
                let cid = Spi.Chan.id ch in
                if is_cold cid then st
                else
                  let st = Spi.Semantics.clear_channel cid st in
                  List.fold_left
                    (fun st tok -> Spi.Semantics.inject model_i cid tok st)
                    st
                    (Spi.Semantics.contents c.state cid))
              (init_of i)
              (Spi.Model.channels model_i)
        in
        results.(i) <-
          Some
            {
              Engine.trace;
              final_state;
              end_time = c.now;
              outcome;
              firings = c.firings;
              reconfiguration_time = 0;
            })
      c.members
  in
  (* The event loop, [Engine.run]'s [loop] with the probe wedged in
     front of every sweep. *)
  let exec stats offer { sub = c; start } =
    (match start with
    | Sweep -> ()
    | Deliver (cid, tok) -> handle_inject stats offer c c.now cid tok);
    settle stats offer c;
    try_start stats c c.now;
    let rec loop () =
      if c.firings > limits.Engine.max_firings then
        finish stats c Engine.Firing_limit_reached
      else
        match Heap.pop_min c.heap with
        | None ->
          emit c (Trace.Quiescent { time = c.now });
          finish stats c Engine.Quiescent
        | Some (time, _) when time > limits.Engine.max_time ->
          finish stats c Engine.Time_limit_reached
        | Some (time, event) ->
          c.now <- time;
          (match event with
          | Inject (cid, tok) -> handle_inject stats offer c time cid tok
          | Complete { proc; mode; started_at; payload; consumed } ->
            let state', produced =
              Spi.Semantics.produce ~overflow ~choose_rate c.model mode
                ~inherited_payload:payload c.state
            in
            c.state <- state';
            let ps = pstate c proc in
            if ps.recover_at = 0 then ps.busy <- false;
            let firing =
              {
                Spi.Semantics.process = proc;
                mode = Spi.Mode.id mode;
                consumed;
                produced;
              }
            in
            emit c (Trace.Completed { time; started_at; process = proc; firing })
          | Recover pid ->
            let ps = pstate c pid in
            if ps.recover_at <= time then begin
              ps.recover_at <- 0;
              ps.busy <- false
            end
          | Crash pid -> (
            match c.fstate with
            | Some fs when not (Fault.crashed fs pid) ->
              Fault.mark_crashed fs pid;
              Fault.note_failure fs pid;
              emit c
                (Trace.Faulted { time; fault = Fault.Crashed { process = pid } })
            | Some _ | None -> ()));
          settle stats offer c;
          try_start stats c time;
          loop ()
    in
    loop ()
  in
  (* ---------------- drive the sub-families ---------------- *)
  let totals =
    Synth.Par.fold ~jobs
      ~init:(fun () ->
        { splits = 0; subfamilies = 0; executed = 0; shared = 0; leaves = [] })
      ~merge:(fun a b ->
        {
          splits = a.splits + b.splits;
          subfamilies = a.subfamilies + b.subfamilies;
          executed = a.executed + b.executed;
          shared = a.shared + b.shared;
          leaves = a.leaves @ b.leaves;
        })
      ~f:(fun pool stats task ->
        (* Forked sub-families go to the pool; when its deque is full
           they stay on a local stack and run here — either way every
           fork is executed exactly once. *)
        let local = Stack.create () in
        let offer t = if not (Synth.Par.push pool t) then Stack.push t local in
        exec stats offer task;
        while not (Stack.is_empty local) do
          exec stats offer (Stack.pop local)
        done;
        stats)
      [| { sub = root; start = Sweep } |]
  in
  let runs =
    Array.init n (fun i ->
        match results.(i) with
        | Some result -> { index = i; assignment = P.assignment space i; result }
        | None ->
          (* unreachable: the leaves partition the full space *)
          invalid_arg "Family.run: configuration left unfinished")
  in
  Obs.Metric.incr m_runs;
  Obs.Metric.add m_configs n;
  Obs.Metric.add m_splits totals.splits;
  Obs.Metric.add m_subfamilies totals.subfamilies;
  Obs.Metric.add m_shared_firings totals.shared;
  Obs.Registry.record_span ~name:"sim.family.run_ns" ~start_ns
    ~dur_ns:(Obs.Clock.elapsed_ns start_ns);
  let leaves =
    (* sort by smallest member for a jobs-count-independent order *)
    Array.of_list
      (List.sort
         (fun a b -> compare (List.hd a.leaf_members) (List.hd b.leaf_members))
         totals.leaves)
  in
  {
    runs;
    splits = totals.splits;
    subfamilies = totals.subfamilies;
    executed_firings = totals.executed;
    shared_firings = totals.shared;
    leaves;
  }

let headroom ~deadline report =
  let out = Array.make (Array.length report.runs) 0 in
  Array.iter
    (fun leaf ->
      let h = deadline - leaf.leaf_makespan in
      List.iter (fun i -> out.(i) <- h) leaf.leaf_members)
    report.leaves;
  Array.mapi (fun i h -> (i, h)) out

let makespans report =
  Array.map
    (fun cr ->
      let last =
        List.fold_left
          (fun acc entry ->
            match entry with
            | Trace.Completed { time; _ } -> max acc time
            | _ -> acc)
          0 cr.result.Engine.trace
      in
      (cr.index, last))
    report.runs

let emit_timeline sink system report =
  Array.iter
    (fun cr ->
      let model =
        Variants.Flatten.flatten system
          (Variants.Variant_space.to_choice cr.assignment)
      in
      let name =
        Format.asprintf "cfg %d: %a" cr.index
          Variants.Variant_space.pp_assignment cr.assignment
      in
      Timeline.emit ~pid:(cr.index + 1) ~name sink model cr.result)
    report.runs

let pp_summary ppf r =
  let per_config_firings =
    Array.fold_left (fun acc cr -> acc + cr.result.Engine.firings) 0 r.runs
  in
  Format.fprintf ppf
    "configs=%d subfamilies=%d splits=%d executed=%d shared=%d (vs %d \
     per-config firings)"
    (Array.length r.runs) r.subfamilies r.splits r.executed_firings
    r.shared_firings per_config_firings
