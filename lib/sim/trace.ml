type entry =
  | Injected of { time : int; channel : Spi.Ids.Channel_id.t; token : Spi.Token.t }
  | Started of {
      time : int;
      process : Spi.Ids.Process_id.t;
      mode : Spi.Ids.Mode_id.t;
      reconfiguration : (Spi.Ids.Config_id.t * int) option;
    }
  | Completed of {
      time : int;
      started_at : int;
      process : Spi.Ids.Process_id.t;
      firing : Spi.Semantics.firing;
    }
  | Faulted of { time : int; fault : Fault.event }
  | Quiescent of { time : int }

type t = entry list

let pp_entry ppf = function
  | Injected { time; channel; token } ->
    Format.fprintf ppf "%5d inject %a on %a" time Spi.Token.pp token
      Spi.Ids.Channel_id.pp channel
  | Started { time; process; mode; reconfiguration } -> (
    match reconfiguration with
    | None ->
      Format.fprintf ppf "%5d start  %a in %a" time Spi.Ids.Process_id.pp
        process Spi.Ids.Mode_id.pp mode
    | Some (config, latency) ->
      Format.fprintf ppf "%5d start  %a in %a [reconfigure to %a, +%d]" time
        Spi.Ids.Process_id.pp process Spi.Ids.Mode_id.pp mode
        Spi.Ids.Config_id.pp config latency)
  | Completed { time; started_at; process; firing } ->
    Format.fprintf ppf "%5d done   %a (started %d): %a" time
      Spi.Ids.Process_id.pp process started_at Spi.Semantics.pp_firing firing
  | Faulted { time; fault } ->
    Format.fprintf ppf "%5d fault  %a" time Fault.pp_event fault
  | Quiescent { time } -> Format.fprintf ppf "%5d quiescent" time

let pp ppf t =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_entry)
    t

let matches_process filter pid =
  match filter with None -> true | Some p -> Spi.Ids.Process_id.equal p pid

let completions ?process t =
  List.filter
    (function
      | Completed { process = p; _ } -> matches_process process p
      | Injected _ | Started _ | Faulted _ | Quiescent _ -> false)
    t

let starts ?process t =
  List.filter
    (function
      | Started { process = p; _ } -> matches_process process p
      | Injected _ | Completed _ | Faulted _ | Quiescent _ -> false)
    t

let reconfigurations t =
  List.filter_map
    (function
      | Started { time; process; reconfiguration = Some (config, latency); _ } ->
        Some (time, process, config, latency)
      | Started _ | Injected _ | Completed _ | Faulted _ | Quiescent _ -> None)
    t

let faults t =
  List.filter_map
    (function
      | Faulted { time; fault } -> Some (time, fault)
      | Injected _ | Started _ | Completed _ | Quiescent _ -> None)
    t

let degradations t =
  List.filter_map
    (function
      | Faulted
          { time; fault = Fault.Degraded { process; from_; to_; latency } } ->
        Some (time, process, from_, to_, latency)
      | Faulted _ | Injected _ | Started _ | Completed _ | Quiescent _ -> None)
    t

let tokens_produced_on channel t =
  List.concat_map
    (function
      | Completed { time; firing; _ } ->
        List.concat_map
          (fun (cid, tokens) ->
            if Spi.Ids.Channel_id.equal cid channel then
              List.map (fun tok -> (time, tok)) tokens
            else [])
          firing.Spi.Semantics.produced
      | Injected _ | Started _ | Faulted _ | Quiescent _ -> [])
    t

let entry_time = function
  | Injected { time; _ } | Started { time; _ } | Completed { time; _ }
  | Faulted { time; _ } | Quiescent { time } -> time

let end_time t = List.fold_left (fun acc e -> max acc (entry_time e)) 0 t

let firing_count t =
  List.length
    (List.filter
       (function
         | Completed _ -> true
         | Injected _ | Started _ | Faulted _ | Quiescent _ -> false)
       t)
