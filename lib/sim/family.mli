(** Family-based ("featured") simulation of a variant space.

    {!Engine.run} evaluates one flattened configuration at a time, so
    covering a system's whole variant space costs
    O(configurations x scenario).  This module lifts the simulation over
    the space: one run starts from a single {e sub-family} covering
    every configuration (a presence condition over
    {!Variants.Presence}), executes work shared by all members once, and
    splits into smaller sub-families only at the first event where the
    members' behaviors can diverge — when a variant of a still-inactive
    site could activate, or when the environment injects into a site's
    internals.  Configurations whose distinguishing clusters never
    activate under the scenario are never split apart: the run covers
    them all with one execution.

    The per-configuration results are {e exactly} the results
    per-configuration {!Engine.run}s would produce on the flattened
    models — trace entry for entry, final channel contents, outcome,
    firing counts and the fault-plan RNG stream included.  The
    differential qcheck harness in [test/test_family.ml] enforces this
    structurally and at rendered-byte level across generated systems,
    fault plans and seeds; docs/FAMILY.md states the proof obligation.

    Restrictions (checked, [Invalid_argument]):
    - shared element ids must not collide with any site's ["<site>."]
      prefix, and no site prefix may extend another's — the prefixes are
      how the engine attributes state to sites;
    - fault plans must not carry a degradation policy: flattened
      per-configuration models have no {!Variants.Configuration.t}s to
      fall back to, so a degrading family run would have no
      per-configuration reference. *)

type config_run = {
  index : int;  (** position in {!Variants.Variant_space.enumerate} order *)
  assignment : Variants.Variant_space.assignment;
  result : Engine.result;
      (** identical to [Engine.run] on this configuration's flattened
          model under the same scenario *)
}

type leaf = {
  leaf_members : int list;
      (** configuration indices the leaf covers, ascending *)
  leaf_makespan : int;
      (** end time of the leaf's last completion (0 when nothing
          completed) — the same number for every member, computed once
          from the shared trace *)
}
(** A sub-family that ran to its outcome. *)

type report = {
  runs : config_run array;  (** one per configuration, in index order *)
  splits : int;  (** sub-family forks taken *)
  subfamilies : int;  (** leaves: distinct executions that finished *)
  executed_firings : int;
      (** firings the family engine actually performed, summed over all
          sub-families *)
  shared_firings : int;
      (** of those, firings performed while covering two or more
          configurations — the work a per-configuration sweep would have
          repeated *)
  leaves : leaf array;
      (** the finished sub-families, ordered by smallest member index
          (independent of [jobs]); their member lists partition the
          configuration indices *)
}

val run :
  ?policy:Engine.policy ->
  ?limits:Engine.limits ->
  ?overflow:Spi.Semantics.overflow ->
  ?stimuli:Engine.stimulus list ->
  ?firing_budget:(Spi.Ids.Process_id.t * int) list ->
  ?faults:Fault.plan ->
  ?linkage:Variants.Variant_space.linkage ->
  ?jobs:int ->
  ?split:[ `Narrow | `Full ] ->
  Variants.System.t ->
  report
(** Simulates every configuration of the system's variant space in one
    featured pass.  The scenario parameters have {!Engine.run}'s
    semantics and apply uniformly to every configuration; stimuli may
    target shared (unprefixed) channels or a site's internals.

    [split] picks the policy for a stimulus aimed inside a still-cold
    site.  [`Full] (the original heuristic) forces the site's
    sub-families apart at injection time.  [`Narrow] (the default) first
    checks whether every member declares the target channel identically
    (kind, capacity, initial tokens): if so the channel is marked
    {e warm} and the write is carried live by the whole sub-family — the
    split happens later, and only if one of the site's variants actually
    activates.  Narrow splitting never forks more sub-families than full
    splitting, and the per-configuration results are identical under
    both policies.

    [jobs] (default 1) runs sub-families as steal-able tasks on the
    {!Synth.Par} work-stealing domain pool: each split offers the new
    sub-families to idle domains, so a heavily-splitting space fans out.
    Results are identical for every job count.

    Registers [sim.family.*] metrics: [runs], [configs], [splits],
    [subfamilies], [shared_firings], the [configs_per_firing] histogram
    and the [sim.family.run_ns] span.

    @raise Invalid_argument on prefix collisions or degradation plans
    (see above); exceptions a per-configuration run would raise
    ({!Spi.Semantics.Channel_overflow}, [Not_found] on stimuli naming
    channels absent from a member's model) propagate. *)

val makespans : report -> (int * int) array
(** [(index, makespan)] per configuration — the end time of the last
    completion in its trace (0 when nothing completed).  The basis of
    per-configuration deadline headroom: [deadline - makespan]. *)

val headroom : deadline:int -> report -> (int * int) array
(** [(index, deadline - makespan)] per configuration, computed once per
    leaf sub-family from {!leaf.leaf_makespan} and fanned out to the
    leaf's members — agreeing with [deadline - snd] over {!makespans}
    entry for entry, at the cost of one trace scan per leaf instead of
    one per configuration.  Negative headroom means the configuration
    misses the deadline. *)

val emit_timeline :
  Obs.Trace_event.sink -> Variants.System.t -> report -> unit
(** Exports every configuration's schedule into one trace file using
    the family lane convention: configuration [index] becomes process
    group [pid = index + 1], named after its assignment, with
    {!Timeline.emit}'s usual per-process lanes inside.  Shared prefixes
    therefore appear as identical lanes across the groups; the groups
    diverge where the run split. *)

val pp_summary : Format.formatter -> report -> unit

(**/**)

(* Site-prefix bookkeeping, shared with {!Family_compiled} so the two
   family engines attribute state to cold sites identically. *)

val prefix_of : Spi.Ids.Interface_id.t -> string
val has_prefix : string -> string -> bool

val cold_site_of :
  Spi.Ids.Interface_id.t list -> string -> Spi.Ids.Interface_id.t option

val validate_prefixes :
  Variants.System.t -> Spi.Ids.Interface_id.t list -> unit

(**/**)
