(** Discrete-event simulation of SPI models with dynamic variants.

    Processes start when their activation function enables a rule:
    consumption happens at start, production at completion after the
    mode's latency (picked inside its interval by the {!policy}).  When
    a {!Variants.Configuration.t} is attached to a process and an
    activated mode lies outside the current configuration, the
    reconfiguration latency is added to that execution and the switch is
    recorded in the trace — the higher-level view of Section 4 ("the
    reconfiguration latency is simply added to the process execution
    latency"). *)

(** How interval parameters are resolved to concrete values. *)
type policy =
  | Best_case  (** lower bounds everywhere *)
  | Worst_case  (** upper bounds everywhere *)
  | Typical  (** interval midpoints *)

type stimulus = {
  at : int;
  channel : Spi.Ids.Channel_id.t;
  token : Spi.Token.t;
}
(** Environment injection: the simulator writes [token] on [channel] at
    time [at] (modeling input streams, user requests, …). *)

type limits = { max_time : int; max_firings : int }

val default_limits : limits
(** [max_time = 100_000], [max_firings = 100_000]. *)

type outcome =
  | Quiescent  (** no activable process and no pending event *)
  | Time_limit_reached
  | Firing_limit_reached

type result = {
  trace : Trace.t;
  final_state : Spi.Semantics.state;
  end_time : int;
  outcome : outcome;
  firings : int;
  reconfiguration_time : int;
      (** total time spent in (re)configuration steps *)
}

val run :
  ?policy:policy ->
  ?limits:limits ->
  ?overflow:Spi.Semantics.overflow ->
  ?configurations:Variants.Configuration.t list ->
  ?stimuli:stimulus list ->
  ?firing_budget:(Spi.Ids.Process_id.t * int) list ->
  ?faults:Fault.plan ->
  Spi.Model.t ->
  result
(** Runs the model to quiescence or a limit.

    [faults] attaches a deterministic fault-injection plan
    (see {!Fault}): channel faults filter environment injections, process
    faults fail firing attempts before consumption (retry with backoff
    until the budget runs out), scripted crashes silence a process
    permanently, and reconfiguration failures pay [t_conf] without
    switching.  When the plan carries a degradation policy, a watchdog
    counts failures per process and — at the threshold — forces a
    reconfiguration to the fallback configuration: its [t_conf] is added
    to [reconfiguration_time], the process is thereafter restricted to
    the fallback configuration's modes (plus modes outside every
    configuration), and a {!Fault.Degraded} event is recorded.  The same
    plan always yields the same trace.

    [overflow] (default {!Spi.Semantics.Reject}) decides what happens
    when a bounded queue is written while full: [Reject] propagates
    {!Spi.Semantics.Channel_overflow} (models must size their buffers),
    [Drop_newest] silently loses the token (lossy environments such as
    the video input).

    [firing_budget] caps how many times a process may start; processes
    with no input channels default to budget 0 (they only run if given
    a budget), every other process is unbounded by default.  Budgets
    express one-shot environment processes such as the paper's [PUser]
    ("to execute only once in the beginning").

    @raise Invalid_argument if a configuration names a process absent
    from the model or fails {!Variants.Configuration.validate_against}. *)

val pick : policy -> Interval.t -> int
(** The value a policy realizes inside an interval: lower bound, upper
    bound, or midpoint.  {!Compile.run} resolves its per-run dispatch
    tables with this, so both engines draw latencies and rates
    identically. *)

val record_metrics : start_ns:int -> Trace.t -> unit
(** Feeds the registry's simulation counters and per-process latency
    histograms from a finished trace (one pass, after the event loop).
    Exposed so {!Compile.run} records exactly the metrics the
    interpreter would. *)

val pp_policy : Format.formatter -> policy -> unit
val pp_outcome : Format.formatter -> outcome -> unit
val pp_summary : Format.formatter -> result -> unit
