(** Deterministic fault injection for the discrete-event engine.

    A {!plan} scripts the faults of one simulation run: per-channel
    token loss/corruption/duplication on environment injections,
    per-process transient firing failures with a bounded retry budget
    and backoff latency, permanent crashes, latency overruns, and
    reconfiguration steps that abort after paying [t_conf].

    Every random decision is drawn from a splitmix64 generator seeded by
    {!plan.seed}: the engine's event loop is deterministic, so the same
    plan over the same model and stimuli reproduces the same trace
    byte-for-byte — a fault campaign is a set of seeds, and any
    interesting seed can be replayed exactly.

    The optional {!degradation} policy is the watchdog: processes that
    accumulate failures past the threshold are forcibly reconfigured to
    a fallback configuration (Def. 4) — the interface's other cluster,
    as designated by the selection function's
    {!Variants.Selection.fallback_cluster} or, at the abstracted level,
    {!Variants.Configuration.fallback}.  The switch pays the fallback's
    [t_conf], restricts the process to the fallback's modes, and is
    recorded as a {!Degraded} event. *)

(** {1 Deterministic randomness} *)

type rng
(** Mutable splitmix64 state. *)

val rng : int -> rng
val rng_float : rng -> float
(** Uniform draw in [\[0, 1)]. *)

val rng_int : rng -> bound:int -> int
(** Uniform draw in [\[0, bound)]. @raise Invalid_argument if
    [bound <= 0]. *)

(** {1 Fault triggers} *)

(** When a scripted fault actually fires. *)
type trigger =
  | Never
  | Probability of float  (** independent draw per opportunity *)
  | Windows of (int * int) list
      (** fires deterministically inside any [\[start, stop)] window *)

val fires : rng -> time:int -> trigger -> bool
(** Evaluates a trigger.  [Probability] consumes one draw from the
    generator; the other triggers consume none. *)

(** {1 Plans} *)

type token_fault =
  | Drop  (** the token is lost before it reaches the channel *)
  | Corrupt
      (** the token arrives with its tags replaced by {!corrupt_tag}
          (content information destroyed) *)
  | Duplicate  (** the token arrives twice *)

type channel_plan = {
  channel : Spi.Ids.Channel_id.t;
  token_fault : token_fault;
  trigger : trigger;
}

type process_plan = {
  process : Spi.Ids.Process_id.t;
  transient : trigger;  (** a firing attempt fails before consuming *)
  max_retries : int;
      (** total transient failures tolerated over the run; the next one
          is a permanent failure *)
  backoff : int;  (** latency charged per failed attempt *)
  crash_at : int option;  (** permanent crash at this instant *)
  overrun : (trigger * int) option;
      (** latency-overrun fault: extra latency added to a firing *)
  reconf_failure : trigger;
      (** a configuration switch aborts after paying [t_conf] *)
}

val on_channel :
  Spi.Ids.Channel_id.t -> token_fault -> trigger -> channel_plan

val on_process :
  ?transient:trigger ->
  ?max_retries:int ->
  ?backoff:int ->
  ?crash_at:int ->
  ?overrun:trigger * int ->
  ?reconf_failure:trigger ->
  Spi.Ids.Process_id.t ->
  process_plan
(** Defaults: no transient faults, [max_retries = 3], [backoff = 1], no
    crash, no overrun, no reconfiguration failures.
    @raise Invalid_argument on negative retries, backoff or crash
    time. *)

type degradation = {
  failure_threshold : int;
      (** failures (transient, exhausted retries, crashes, aborted
          reconfigurations) a process may accumulate before the
          watchdog degrades it *)
  fallback :
    Spi.Ids.Process_id.t ->
    Spi.Ids.Config_id.t option ->
    Spi.Ids.Config_id.t option;
      (** fallback configuration given the current [confcur]; [None]
          leaves the process failed in place *)
  recovery_stimuli :
    Spi.Ids.Process_id.t ->
    Spi.Ids.Config_id.t ->
    (Spi.Ids.Channel_id.t * Spi.Token.t) list;
      (** tokens injected when degradation to the given configuration is
          forced — lets a model's own switching protocol (e.g. the video
          controller) carry out the switch *)
}

val degradation :
  ?failure_threshold:int ->
  ?recovery_stimuli:
    (Spi.Ids.Process_id.t ->
    Spi.Ids.Config_id.t ->
    (Spi.Ids.Channel_id.t * Spi.Token.t) list) ->
  fallback:
    (Spi.Ids.Process_id.t ->
    Spi.Ids.Config_id.t option ->
    Spi.Ids.Config_id.t option) ->
  unit ->
  degradation
(** Defaults: [failure_threshold = 1], no recovery stimuli.
    @raise Invalid_argument if the threshold is not positive. *)

val fallback_of_configurations :
  Variants.Configuration.t list ->
  Spi.Ids.Process_id.t ->
  Spi.Ids.Config_id.t option ->
  Spi.Ids.Config_id.t option
(** The standard fallback policy over abstracted interfaces: the first
    configuration of the process's set that differs from the current
    one (see {!Variants.Configuration.fallback}). *)

type plan = {
  seed : int;
  channels : channel_plan list;
  processes : process_plan list;
  degrade : degradation option;
}

val plan :
  ?channels:channel_plan list ->
  ?processes:process_plan list ->
  ?degrade:degradation ->
  seed:int ->
  unit ->
  plan

(** {1 Events recorded in the trace} *)

type event =
  | Token_dropped of { channel : Spi.Ids.Channel_id.t; token : Spi.Token.t }
  | Token_corrupted of {
      channel : Spi.Ids.Channel_id.t;
      token : Spi.Token.t;  (** the corrupted replacement *)
    }
  | Token_duplicated of {
      channel : Spi.Ids.Channel_id.t;
      token : Spi.Token.t;
    }
  | Transient_failure of {
      process : Spi.Ids.Process_id.t;
      mode : Spi.Ids.Mode_id.t;
      retry : int;  (** ordinal of this failure, 1-based *)
      backoff : int;
    }
  | Retries_exhausted of {
      process : Spi.Ids.Process_id.t;
      mode : Spi.Ids.Mode_id.t;
    }
  | Crashed of { process : Spi.Ids.Process_id.t }
  | Latency_overrun of {
      process : Spi.Ids.Process_id.t;
      mode : Spi.Ids.Mode_id.t;
      extra : int;
    }
  | Reconfiguration_failed of {
      process : Spi.Ids.Process_id.t;
      target : Spi.Ids.Config_id.t;
      latency : int;  (** the [t_conf] paid by the aborted switch *)
    }
  | Degraded of {
      process : Spi.Ids.Process_id.t;
      from_ : Spi.Ids.Config_id.t option;
      to_ : Spi.Ids.Config_id.t;
      latency : int;  (** the fallback's [t_conf] *)
    }

val event_kind : event -> string
(** Short stable label ("token_dropped", "degraded", …) used by the CSV
    and JSON exporters. *)

val pp_event : Format.formatter -> event -> unit

val corrupt_tag : Spi.Tag.t
(** The tag carried by corrupted tokens (their original tags are
    destroyed). *)

(** {1 Runtime state driven by the engine} *)

type state

val start : plan -> state
val plan_of : state -> plan

val copy : state -> state
(** Independent clone of the runtime state: the splitmix64 stream
    position and every per-process counter (retries, failures, crash and
    degradation flags) are duplicated, so the clone and the original
    draw and count independently from the fork point on.  {!Family}
    forks the fault state when a run splits into sub-families — each
    branch then consumes the stream exactly as a per-configuration
    {!Engine.run} would from that point. *)

(** Outcome of passing one injected token through the channel plans. *)
type token_outcome =
  | Deliver
  | Dropped
  | Corrupted of Spi.Token.t
  | Duplicated

val on_token :
  state -> time:int -> Spi.Ids.Channel_id.t -> Spi.Token.t -> token_outcome

(** Outcome of a firing attempt. *)
type attempt =
  | Proceed of { overrun : int option }
      (** fire normally, stretched by [overrun] when the latency fault
          triggered *)
  | Retry of { retry : int; backoff : int }
      (** transient failure: back off, tokens stay untouched *)
  | Exhausted
      (** the retry budget is spent: the process fails permanently *)

val on_attempt :
  state -> time:int -> Spi.Ids.Process_id.t -> Spi.Ids.Mode_id.t -> attempt

val reconf_fails : state -> time:int -> Spi.Ids.Process_id.t -> bool

val crashed : state -> Spi.Ids.Process_id.t -> bool
val mark_crashed : state -> Spi.Ids.Process_id.t -> unit

val crash_schedule : state -> (Spi.Ids.Process_id.t * int) list
(** Scheduled permanent crashes, for the engine to turn into events. *)

val note_failure : state -> Spi.Ids.Process_id.t -> unit
val failures : state -> Spi.Ids.Process_id.t -> int
val retries_used : state -> Spi.Ids.Process_id.t -> int

val should_degrade : state -> Spi.Ids.Process_id.t -> bool
(** The plan has a degradation policy, the process reached the failure
    threshold, and it has not been degraded yet. *)

val mark_degraded : state -> Spi.Ids.Process_id.t -> unit
(** Records the degradation and revives the process (crash flag and
    failure counter reset) so the fallback configuration can run. *)
