(** Shared runtime of the compiled engines.

    {!Compile} (per-configuration AOT simulation) and {!Family_compiled}
    (compiled family-based simulation) lower models onto the same
    closure-free primitives: ring-buffered channel state, activation
    guards compiled over dense channel indexes, and an int-coded event
    scheme for the flat {!Heap.Int_heap}.  Keeping them here guarantees
    the two engines agree byte-for-byte on channel and event semantics —
    the four-way differential harness in [test/test_family_compiled.ml]
    leans on that. *)

(** {1 Channel state} *)

type cstate = {
  mutable buf : Spi.Token.t array;
  mutable head : int;
  mutable count : int;
}
(** Ring-buffered channel contents.  Registers keep at most one token
    (destructive write); queues are FIFO with amortized O(1)
    push/pop. *)

val dummy_token : Spi.Token.t
(** Fills unused ring slots so popped tokens are not retained. *)

val make_chan : Spi.Token.t list -> cstate
(** A fresh ring holding the given initial tokens, in order. *)

val copy_chan : cstate -> cstate
(** Independent clone with identical contents and layout —
    {!Family_compiled} transplants live channels across sub-family
    forks with this. *)

val ring_push : cstate -> Spi.Token.t -> unit
val ring_pop : cstate -> Spi.Token.t

val contents : cstate -> Spi.Token.t list
(** FIFO-order contents, head first. *)

val write :
  register:bool array ->
  cap:int array ->
  ids:Spi.Ids.Channel_id.t array ->
  overflow:Spi.Semantics.overflow ->
  cstate array ->
  int ->
  Spi.Token.t ->
  unit
(** [write ~register ~cap ~ids ~overflow chans ix tok] performs one
    channel write with the reference semantics: destructive on
    registers; on a full bounded queue ([cap.(ix) >= 0]) it raises
    {!Spi.Semantics.Channel_overflow} under [Reject] and discards the
    token under [Drop_newest]. *)

(** {1 Compiled guards} *)

type gpred =
  | G_true
  | G_false
  | G_num_at_least of int * int  (** channel index, threshold *)
  | G_first_has_tag of int * Spi.Tag.t
  | G_and of gpred * gpred
  | G_or of gpred * gpred
  | G_not of gpred
      (** Activation guards over channel indexes.  A channel the model
          does not declare compiles to index -1: it holds no tokens and
          no tags, exactly like the interpreter's view of an absent
          channel. *)

type crule = { guard : gpred; target : int  (** mode index; -1 unknown *) }

type ccons = {
  c_ix : int;  (** channel index; -1 when the model lacks the channel *)
  c_cid : Spi.Ids.Channel_id.t;
  c_rate : Interval.t;
}

type cprod = {
  p_ix : int;
  p_cid : Spi.Ids.Channel_id.t;
  p_rate : Interval.t;
  p_tags : Spi.Tag.Set.t;
}

val compile_pred :
  ix_of:(Spi.Ids.Channel_id.t -> int) -> Spi.Predicate.t -> gpred

val eval : cstate array -> gpred -> bool
(** Evaluates a compiled guard against the live channel rings. *)

(** {1 Event coding}

    [4*k] injection #k, [4*p+1] completion of process [p], [4*p+2]
    recovery of process [p], [4*k+3] scripted crash #k — dispatch on
    [v land 3], operand is [v lsr 2]. *)

val ev_inject : int -> int
val ev_complete : int -> int
val ev_recover : int -> int
val ev_crash : int -> int
