module I = Spi.Ids

(* ------------------------------------------------------------------ *)
(* Splitmix64: tiny, fast, and fully determined by the seed.           *)
(* ------------------------------------------------------------------ *)

type rng = { mutable s : int64 }

let rng seed = { s = Int64.of_int seed }

let next r =
  r.s <- Int64.add r.s 0x9E3779B97F4A7C15L;
  let z = r.s in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let rng_float r =
  (* 53 high bits into [0, 1) *)
  Int64.to_float (Int64.shift_right_logical (next r) 11)
  *. (1.0 /. 9007199254740992.0)

let rng_int r ~bound =
  if bound <= 0 then invalid_arg "Fault.rng_int: bound <= 0";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next r) 1) (Int64.of_int bound))

(* ------------------------------------------------------------------ *)
(* Triggers.                                                           *)
(* ------------------------------------------------------------------ *)

type trigger =
  | Never
  | Probability of float
  | Windows of (int * int) list

let fires r ~time = function
  | Never -> false
  | Probability p -> rng_float r < p
  | Windows ws -> List.exists (fun (a, b) -> time >= a && time < b) ws

(* ------------------------------------------------------------------ *)
(* Plans.                                                              *)
(* ------------------------------------------------------------------ *)

type token_fault = Drop | Corrupt | Duplicate

type channel_plan = {
  channel : I.Channel_id.t;
  token_fault : token_fault;
  trigger : trigger;
}

type process_plan = {
  process : I.Process_id.t;
  transient : trigger;
  max_retries : int;
  backoff : int;
  crash_at : int option;
  overrun : (trigger * int) option;
  reconf_failure : trigger;
}

let on_channel channel token_fault trigger = { channel; token_fault; trigger }

let on_process ?(transient = Never) ?(max_retries = 3) ?(backoff = 1) ?crash_at
    ?overrun ?(reconf_failure = Never) process =
  if max_retries < 0 then invalid_arg "Fault.on_process: negative max_retries";
  if backoff < 0 then invalid_arg "Fault.on_process: negative backoff";
  (match crash_at with
  | Some t when t < 0 -> invalid_arg "Fault.on_process: negative crash_at"
  | Some _ | None -> ());
  { process; transient; max_retries; backoff; crash_at; overrun; reconf_failure }

type degradation = {
  failure_threshold : int;
  fallback : I.Process_id.t -> I.Config_id.t option -> I.Config_id.t option;
  recovery_stimuli :
    I.Process_id.t -> I.Config_id.t -> (I.Channel_id.t * Spi.Token.t) list;
}

let degradation ?(failure_threshold = 1) ?(recovery_stimuli = fun _ _ -> [])
    ~fallback () =
  if failure_threshold < 1 then
    invalid_arg "Fault.degradation: failure_threshold < 1";
  { failure_threshold; fallback; recovery_stimuli }

let fallback_of_configurations configurations pid cur =
  match
    List.find_opt
      (fun c -> I.Process_id.equal (Variants.Configuration.process c) pid)
      configurations
  with
  | None -> None
  | Some conf -> Variants.Configuration.fallback ?avoid:cur conf

type plan = {
  seed : int;
  channels : channel_plan list;
  processes : process_plan list;
  degrade : degradation option;
}

let plan ?(channels = []) ?(processes = []) ?degrade ~seed () =
  { seed; channels; processes; degrade }

(* ------------------------------------------------------------------ *)
(* Events.                                                             *)
(* ------------------------------------------------------------------ *)

type event =
  | Token_dropped of { channel : I.Channel_id.t; token : Spi.Token.t }
  | Token_corrupted of { channel : I.Channel_id.t; token : Spi.Token.t }
  | Token_duplicated of { channel : I.Channel_id.t; token : Spi.Token.t }
  | Transient_failure of {
      process : I.Process_id.t;
      mode : I.Mode_id.t;
      retry : int;
      backoff : int;
    }
  | Retries_exhausted of { process : I.Process_id.t; mode : I.Mode_id.t }
  | Crashed of { process : I.Process_id.t }
  | Latency_overrun of {
      process : I.Process_id.t;
      mode : I.Mode_id.t;
      extra : int;
    }
  | Reconfiguration_failed of {
      process : I.Process_id.t;
      target : I.Config_id.t;
      latency : int;
    }
  | Degraded of {
      process : I.Process_id.t;
      from_ : I.Config_id.t option;
      to_ : I.Config_id.t;
      latency : int;
    }

let event_kind = function
  | Token_dropped _ -> "token_dropped"
  | Token_corrupted _ -> "token_corrupted"
  | Token_duplicated _ -> "token_duplicated"
  | Transient_failure _ -> "transient_failure"
  | Retries_exhausted _ -> "retries_exhausted"
  | Crashed _ -> "crashed"
  | Latency_overrun _ -> "latency_overrun"
  | Reconfiguration_failed _ -> "reconfiguration_failed"
  | Degraded _ -> "degraded"

let pp_event ppf = function
  | Token_dropped { channel; token } ->
    Format.fprintf ppf "dropped %a on %a" Spi.Token.pp token I.Channel_id.pp
      channel
  | Token_corrupted { channel; token } ->
    Format.fprintf ppf "corrupted to %a on %a" Spi.Token.pp token
      I.Channel_id.pp channel
  | Token_duplicated { channel; token } ->
    Format.fprintf ppf "duplicated %a on %a" Spi.Token.pp token I.Channel_id.pp
      channel
  | Transient_failure { process; mode; retry; backoff } ->
    Format.fprintf ppf "%a failed in %a (retry %d, backoff %d)" I.Process_id.pp
      process I.Mode_id.pp mode retry backoff
  | Retries_exhausted { process; mode } ->
    Format.fprintf ppf "%a exhausted retries in %a" I.Process_id.pp process
      I.Mode_id.pp mode
  | Crashed { process } ->
    Format.fprintf ppf "%a crashed" I.Process_id.pp process
  | Latency_overrun { process; mode; extra } ->
    Format.fprintf ppf "%a overran in %a (+%d)" I.Process_id.pp process
      I.Mode_id.pp mode extra
  | Reconfiguration_failed { process; target; latency } ->
    Format.fprintf ppf "%a failed to reconfigure to %a (paid %d)"
      I.Process_id.pp process I.Config_id.pp target latency
  | Degraded { process; from_; to_; latency } ->
    Format.fprintf ppf "%a degraded %s-> %a (+%d)" I.Process_id.pp process
      (match from_ with
      | None -> ""
      | Some c -> Format.asprintf "from %a " I.Config_id.pp c)
      I.Config_id.pp to_ latency

let corrupt_tag = Spi.Tag.make "corrupt"

(* ------------------------------------------------------------------ *)
(* Runtime state.                                                      *)
(* ------------------------------------------------------------------ *)

type pstate = {
  pplan : process_plan;
  mutable retries : int;
  mutable fails : int;
  mutable dead : bool;
  mutable degraded : bool;
}

type state = {
  the_plan : plan;
  r : rng;
  procs : (string, pstate) Hashtbl.t;
  chans : (string, channel_plan) Hashtbl.t;
}

let start the_plan =
  let procs = Hashtbl.create 8 in
  List.iter
    (fun pplan ->
      Hashtbl.replace procs
        (I.Process_id.to_string pplan.process)
        { pplan; retries = 0; fails = 0; dead = false; degraded = false })
    the_plan.processes;
  let chans = Hashtbl.create 8 in
  List.iter
    (fun cp -> Hashtbl.replace chans (I.Channel_id.to_string cp.channel) cp)
    the_plan.channels;
  { the_plan; r = rng the_plan.seed; procs; chans }

let copy t =
  let procs = Hashtbl.create (max 8 (Hashtbl.length t.procs)) in
  Hashtbl.iter
    (fun key ps -> Hashtbl.replace procs key { ps with retries = ps.retries })
    t.procs;
  { the_plan = t.the_plan; r = { s = t.r.s }; procs; chans = Hashtbl.copy t.chans }

let plan_of t = t.the_plan
let find_proc t pid = Hashtbl.find_opt t.procs (I.Process_id.to_string pid)

(* A process that fails without a scripted plan (only possible through
   external bookkeeping) still needs somewhere to count. *)
let force_proc t pid =
  match find_proc t pid with
  | Some ps -> ps
  | None ->
    let ps =
      {
        pplan = on_process pid;
        retries = 0;
        fails = 0;
        dead = false;
        degraded = false;
      }
    in
    Hashtbl.replace t.procs (I.Process_id.to_string pid) ps;
    ps

type token_outcome =
  | Deliver
  | Dropped
  | Corrupted of Spi.Token.t
  | Duplicated

let corrupt t token =
  (* content information (the tag set) is destroyed; the payload is
     scrambled so observers can tell the frame is damaged *)
  let payload =
    Option.map (fun p -> p lxor (1 + rng_int t.r ~bound:0xFFFF)) (Spi.Token.payload token)
  in
  Spi.Token.make ~tags:(Spi.Tag.Set.singleton corrupt_tag) ?payload ()

let on_token t ~time cid token =
  match Hashtbl.find_opt t.chans (I.Channel_id.to_string cid) with
  | None -> Deliver
  | Some cp ->
    if not (fires t.r ~time cp.trigger) then Deliver
    else (
      match cp.token_fault with
      | Drop -> Dropped
      | Corrupt -> Corrupted (corrupt t token)
      | Duplicate -> Duplicated)

type attempt =
  | Proceed of { overrun : int option }
  | Retry of { retry : int; backoff : int }
  | Exhausted

let overrun_of t ~time ps =
  match ps.pplan.overrun with
  | None -> None
  | Some (trigger, extra) ->
    if fires t.r ~time trigger then Some extra else None

let on_attempt t ~time pid _mid =
  match find_proc t pid with
  | None -> Proceed { overrun = None }
  | Some ps ->
    if fires t.r ~time ps.pplan.transient then
      if ps.retries < ps.pplan.max_retries then begin
        ps.retries <- ps.retries + 1;
        ps.fails <- ps.fails + 1;
        Retry { retry = ps.retries; backoff = ps.pplan.backoff }
      end
      else begin
        ps.dead <- true;
        ps.fails <- ps.fails + 1;
        Exhausted
      end
    else Proceed { overrun = overrun_of t ~time ps }

let reconf_fails t ~time pid =
  match find_proc t pid with
  | None -> false
  | Some ps -> fires t.r ~time ps.pplan.reconf_failure

let crashed t pid =
  match find_proc t pid with None -> false | Some ps -> ps.dead

let mark_crashed t pid = (force_proc t pid).dead <- true

let crash_schedule t =
  List.filter_map
    (fun pp -> Option.map (fun at -> (pp.process, at)) pp.crash_at)
    t.the_plan.processes

let note_failure t pid =
  let ps = force_proc t pid in
  ps.fails <- ps.fails + 1

let failures t pid =
  match find_proc t pid with None -> 0 | Some ps -> ps.fails

let retries_used t pid =
  match find_proc t pid with None -> 0 | Some ps -> ps.retries

let should_degrade t pid =
  match t.the_plan.degrade with
  | None -> false
  | Some d -> (
    match find_proc t pid with
    | None -> false
    | Some ps -> (not ps.degraded) && ps.fails >= d.failure_threshold)

let mark_degraded t pid =
  let ps = force_proc t pid in
  ps.degraded <- true;
  ps.dead <- false;
  ps.fails <- 0
