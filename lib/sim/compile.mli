(** AOT specialization of SPI models for the simulator.

    {!compile} lowers a loaded model (plus its configuration sets) into
    a {!plan}: flat int-indexed process/channel/mode tables, activation
    guards compiled to a closure-free predicate over channel indexes,
    and per-configuration dispatch data (reconfiguration latencies,
    degradation mode masks) resolved to dense arrays.  {!run} then
    drives a tight event loop over ring-buffered channels and the
    allocation-free {!Heap.Int_heap}: per firing it allocates only what
    the trace itself records.

    The compiled engine is {e observationally identical} to
    {!Engine.run}: same trace (entry for entry, token for token), same
    final state, same outcome and counters, for every policy, fault
    plan, overflow mode, stimulus schedule and firing budget.  Fault
    randomness is drawn through the same {!Fault} calls in the same
    order, so a fault plan's RNG stream — and therefore the whole
    campaign — replays exactly.  The differential qcheck harness in
    [test/test_compile.ml] enforces this equivalence.

    Compile once, run many: a plan is immutable and reusable, so fault
    campaigns and synthesis inner loops pay model lowering once per
    model instead of interpretive dispatch on every firing. *)

type plan
(** A model specialized for simulation.  Immutable; safe to reuse
    across runs (each {!run} builds fresh mutable run state), but not
    across domains concurrently with the same [Fault] plan. *)

val compile :
  ?configurations:Variants.Configuration.t list -> Spi.Model.t -> plan
(** Lowers [model].  Configuration sets are validated here — once — with
    the same rules as {!Engine.run}.

    @raise Invalid_argument if a configuration names a process absent
    from the model or fails {!Variants.Configuration.validate_against}. *)

val run :
  ?policy:Engine.policy ->
  ?limits:Engine.limits ->
  ?overflow:Spi.Semantics.overflow ->
  ?stimuli:Engine.stimulus list ->
  ?firing_budget:(Spi.Ids.Process_id.t * int) list ->
  ?faults:Fault.plan ->
  plan ->
  Engine.result
(** Runs the compiled plan.  Accepts exactly the run-time parameters of
    {!Engine.run} (the compile-time parameters — model and
    configurations — are baked into the plan) and returns the same
    {!Engine.result}, so stats, exporters and checkers work unchanged. *)

val key : plan -> string
(** Structural fingerprint of the model {e and} its configuration sets
    ({!Variants.Canonical} digest): two plans with equal keys simulate
    identically.  The serve daemon's in-memory plan cache is keyed by
    this. *)

val plan_key :
  ?configurations:Variants.Configuration.t list -> Spi.Model.t -> string
(** The {!key} that {!compile} would assign, computed without compiling
    — what a cache looks up before deciding whether to pay the
    specialization. *)

val model : plan -> Spi.Model.t
val configurations : plan -> Variants.Configuration.t list
