type 'a entry = { time : int; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { data = [||]; size = 0; next_seq = 0 }
let is_empty h = h.size = 0
let size h = h.size

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow h entry =
  let cap = Array.length h.data in
  if h.size = cap then begin
    let ncap = max 16 (2 * cap) in
    let data = Array.make ncap entry in
    Array.blit h.data 0 data 0 h.size;
    h.data <- data
  end

let push ~time value h =
  let entry = { time; seq = h.next_seq; value } in
  h.next_seq <- h.next_seq + 1;
  grow h entry;
  h.data.(h.size) <- entry;
  h.size <- h.size + 1;
  (* sift up *)
  let rec up i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if before h.data.(i) h.data.(parent) then begin
        let tmp = h.data.(i) in
        h.data.(i) <- h.data.(parent);
        h.data.(parent) <- tmp;
        up parent
      end
    end
  in
  up (h.size - 1)

let pop_min h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      let rec down i =
        let left = (2 * i) + 1 and right = (2 * i) + 2 in
        let smallest =
          if left < h.size && before h.data.(left) h.data.(i) then left else i
        in
        let smallest =
          if right < h.size && before h.data.(right) h.data.(smallest) then
            right
          else smallest
        in
        if smallest <> i then begin
          let tmp = h.data.(i) in
          h.data.(i) <- h.data.(smallest);
          h.data.(smallest) <- tmp;
          down smallest
        end
      in
      down 0
    end;
    Some (top.time, top.value)
  end

let peek_time h = if h.size = 0 then None else Some h.data.(0).time

let copy h = { data = Array.copy h.data; size = h.size; next_seq = h.next_seq }

(* Specialization for int-coded payloads: entries live in one flat int
   array (time, seq, value per slot), so pushing an event allocates
   nothing once the array has grown to the run's high-water mark.  The
   compiled engine's event loop uses this; ordering is identical to the
   generic heap ((time, seq) with FIFO tie-break). *)
module Int_heap = struct
  type t = {
    mutable data : int array;  (** stride 3: time, seq, value *)
    mutable size : int;  (** entries, not array slots *)
    mutable next_seq : int;
  }

  let create () = { data = [||]; size = 0; next_seq = 0 }
  let is_empty h = h.size = 0
  let size h = h.size

  let before d i j =
    let ti = d.(3 * i) and tj = d.(3 * j) in
    ti < tj || (ti = tj && d.((3 * i) + 1) < d.((3 * j) + 1))

  let swap d i j =
    for k = 0 to 2 do
      let tmp = d.((3 * i) + k) in
      d.((3 * i) + k) <- d.((3 * j) + k);
      d.((3 * j) + k) <- tmp
    done

  let push ~time value h =
    let cap = Array.length h.data / 3 in
    if h.size = cap then begin
      let data = Array.make (3 * max 16 (2 * cap)) 0 in
      Array.blit h.data 0 data 0 (3 * h.size);
      h.data <- data
    end;
    let d = h.data in
    let i = h.size in
    d.(3 * i) <- time;
    d.((3 * i) + 1) <- h.next_seq;
    d.((3 * i) + 2) <- value;
    h.next_seq <- h.next_seq + 1;
    h.size <- h.size + 1;
    let rec up i =
      if i > 0 then begin
        let parent = (i - 1) / 2 in
        if before d i parent then begin
          swap d i parent;
          up parent
        end
      end
    in
    up i

  let min_time h = h.data.(0)
  let min_value h = h.data.(2)

  let copy h =
    { data = Array.copy h.data; size = h.size; next_seq = h.next_seq }

  let drop_min h =
    let d = h.data in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      swap d 0 h.size;
      let rec down i =
        let left = (2 * i) + 1 and right = (2 * i) + 2 in
        let smallest =
          if left < h.size && before d left i then left else i
        in
        let smallest =
          if right < h.size && before d right smallest then right
          else smallest
        in
        if smallest <> i then begin
          swap d i smallest;
          down smallest
        end
      in
      down 0
    end
end
