(** Simulation schedules as timelines.

    One pass over a finished {!Engine.result} turns the trace into
    {!Obs.Trace_event} lanes: every SPI process is a lane, every
    completed execution a span, reconfiguration steps explicit [t_conf]
    spans, token movement flow arrows, faults and degradations instants.
    Load the exported file in Perfetto or [chrome://tracing] to see the
    schedule the discrete-event engine actually produced.

    Lane layout per [pid]:
    - [tid 0] — the environment: stimulus injections, token faults, and
      the quiescence marker;
    - [tid 1..n] — the model's processes in declaration order.

    Time mapping: one model time unit becomes one microsecond, so
    viewer timestamps read directly as model time. *)

val emit :
  ?pid:int ->
  ?name:string ->
  Obs.Trace_event.sink ->
  Spi.Model.t ->
  Engine.result ->
  unit
(** [emit sink model result] converts the timeline of [result] into
    [sink] under process group [pid] (default 0), labelled [name]
    (default ["simulation"]).  Distinct [pid]s keep several runs — e.g.
    the seeds of a fault campaign — separate in one file.  The sink may
    be buffered ({!Obs.Trace_event.buffer_sink}) or incremental
    ({!Obs.Trace_stream.sink}); with a stream, flush after each run's
    [emit] so long campaigns hold at most one run's events in memory.

    Emitted events:
    - a [Complete] span per execution, named after the mode, covering
      [\[started_at + t_conf, completion\]];
    - a [Complete] span named ["t_conf"] (category ["reconf"]) for the
      reconfiguration step of an execution that switched configurations,
      with source/target configuration and [t_conf] in the args;
    - flow arrows from each token production (and environment injection)
      to the execution that consumed it;
    - [Instant]s for faults (on the affected process's lane; token
      faults on the environment lane), watchdog degradations, and
      aborted reconfigurations;
    - [Counter] samples of every channel's queue depth.

    Spans on one lane never overlap: the engine runs a process's
    executions sequentially, and backoff/degradation latencies are
    rendered as instants, not spans. *)

val add :
  ?pid:int ->
  ?name:string ->
  Obs.Trace_event.t ->
  Spi.Model.t ->
  Engine.result ->
  unit
(** [add builder model result] is {!emit} into [builder]'s buffered
    sink. *)
