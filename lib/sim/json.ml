module I = Spi.Ids

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 32 ->
        Buffer.add_string buf (Format.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let str s = "\"" ^ escape s ^ "\""
let field k v = str k ^ ":" ^ v
let obj fields = "{" ^ String.concat "," fields ^ "}"
let arr items = "[" ^ String.concat "," items ^ "]"

let token_json tok =
  let tags =
    arr (List.map (fun t -> str (Spi.Tag.name t)) (Spi.Tag.Set.elements (Spi.Token.tags tok)))
  in
  let base = [ field "tags" tags ] in
  let base =
    match Spi.Token.payload tok with
    | Some p -> field "payload" (string_of_int p) :: base
    | None -> base
  in
  obj base

let moved_json (cid, toks) =
  obj
    [
      field "channel" (str (I.Channel_id.to_string cid));
      field "tokens" (arr (List.map token_json toks));
    ]

let entry_json = function
  | Trace.Injected { time; channel; token } ->
    obj
      [
        field "kind" (str "inject");
        field "time" (string_of_int time);
        field "channel" (str (I.Channel_id.to_string channel));
        field "token" (token_json token);
      ]
  | Trace.Started { time; process; mode; reconfiguration } ->
    let base =
      [
        field "kind" (str "start");
        field "time" (string_of_int time);
        field "process" (str (I.Process_id.to_string process));
        field "mode" (str (I.Mode_id.to_string mode));
      ]
    in
    let base =
      match reconfiguration with
      | None -> base
      | Some (config, latency) ->
        base
        @ [
            field "reconfigure_to" (str (I.Config_id.to_string config));
            field "reconfiguration_latency" (string_of_int latency);
          ]
    in
    obj base
  | Trace.Completed { time; started_at; process; firing } ->
    obj
      [
        field "kind" (str "complete");
        field "time" (string_of_int time);
        field "started_at" (string_of_int started_at);
        field "process" (str (I.Process_id.to_string process));
        field "mode" (str (I.Mode_id.to_string firing.Spi.Semantics.mode));
        field "consumed" (arr (List.map moved_json firing.Spi.Semantics.consumed));
        field "produced" (arr (List.map moved_json firing.Spi.Semantics.produced));
      ]
  | Trace.Faulted { time; fault } ->
    let base =
      [
        field "kind" (str "fault");
        field "time" (string_of_int time);
        field "fault" (str (Fault.event_kind fault));
      ]
    in
    let detail =
      match fault with
      | Fault.Token_dropped { channel; token }
      | Fault.Token_corrupted { channel; token }
      | Fault.Token_duplicated { channel; token } ->
        [
          field "channel" (str (I.Channel_id.to_string channel));
          field "token" (token_json token);
        ]
      | Fault.Transient_failure { process; mode; retry; backoff } ->
        [
          field "process" (str (I.Process_id.to_string process));
          field "mode" (str (I.Mode_id.to_string mode));
          field "retry" (string_of_int retry);
          field "backoff" (string_of_int backoff);
        ]
      | Fault.Retries_exhausted { process; mode } ->
        [
          field "process" (str (I.Process_id.to_string process));
          field "mode" (str (I.Mode_id.to_string mode));
        ]
      | Fault.Crashed { process } ->
        [ field "process" (str (I.Process_id.to_string process)) ]
      | Fault.Latency_overrun { process; mode; extra } ->
        [
          field "process" (str (I.Process_id.to_string process));
          field "mode" (str (I.Mode_id.to_string mode));
          field "extra" (string_of_int extra);
        ]
      | Fault.Reconfiguration_failed { process; target; latency } ->
        [
          field "process" (str (I.Process_id.to_string process));
          field "target" (str (I.Config_id.to_string target));
          field "latency" (string_of_int latency);
        ]
      | Fault.Degraded { process; from_; to_; latency } ->
        [
          field "process" (str (I.Process_id.to_string process));
          field "from"
            (match from_ with
            | None -> "null"
            | Some c -> str (I.Config_id.to_string c));
          field "to" (str (I.Config_id.to_string to_));
          field "latency" (string_of_int latency);
        ]
    in
    obj (base @ detail)
  | Trace.Quiescent { time } ->
    obj [ field "kind" (str "quiescent"); field "time" (string_of_int time) ]

let outcome_string = function
  | Engine.Quiescent -> "quiescent"
  | Engine.Time_limit_reached -> "time_limit"
  | Engine.Firing_limit_reached -> "firing_limit"

let result_to_string model (result : Engine.result) =
  let stats = Stats.of_result model result in
  let fault_summary (f : Stats.fault_stats) =
    obj
      [
        field "token_faults" (string_of_int f.Stats.token_faults);
        field "transient_failures" (string_of_int f.Stats.transient_failures);
        field "retries_exhausted" (string_of_int f.Stats.retries_exhausted);
        field "crashes" (string_of_int f.Stats.crashes);
        field "latency_overruns" (string_of_int f.Stats.latency_overruns);
        field "reconfiguration_failures"
          (string_of_int f.Stats.reconfiguration_failures);
        field "degradations" (string_of_int f.Stats.degradations);
      ]
  in
  let summary =
    obj
      [
        field "end_time" (string_of_int result.Engine.end_time);
        field "firings" (string_of_int result.Engine.firings);
        field "reconfiguration_time"
          (string_of_int result.Engine.reconfiguration_time);
        field "outcome" (str (outcome_string result.Engine.outcome));
        field "faults" (fault_summary stats.Stats.faults);
      ]
  in
  let processes =
    arr
      (List.map
         (fun (p : Stats.process_stats) ->
           obj
             [
               field "process" (str (I.Process_id.to_string p.Stats.proc));
               field "firings" (string_of_int p.Stats.firings);
               field "busy_time" (string_of_int p.Stats.busy_time);
               field "utilization" (Format.sprintf "%.4f" p.Stats.utilization);
               field "reconfigurations" (string_of_int p.Stats.reconfigurations);
             ])
         stats.Stats.processes)
  in
  let channels =
    arr
      (List.map
         (fun (c : Stats.channel_stats) ->
           obj
             [
               field "channel" (str (I.Channel_id.to_string c.Stats.chan));
               field "tokens_through" (string_of_int c.Stats.tokens_through);
               field "high_water" (string_of_int c.Stats.high_water);
               field "final_occupancy" (string_of_int c.Stats.final_occupancy);
             ])
         stats.Stats.channels)
  in
  obj
    [
      field "summary" summary;
      field "trace" (arr (List.map entry_json result.Engine.trace));
      field "processes" processes;
      field "channels" channels;
    ]

let to_file path model result =
  let oc = open_out path in
  output_string oc (result_to_string model result);
  output_char oc '\n';
  close_out oc
