(* Benchmark harness: regenerates every table and figure of the paper
   and runs a Bechamel performance suite over the same computations.

     dune exec bench/main.exe              -- everything
     dune exec bench/main.exe table1       -- one experiment
     dune exec bench/main.exe -- --no-perf -- skip the Bechamel suite

   Experiments: table1, figure1, figure2, figure3, figure4,
   ablation-serial, ablation-designtime, ablation-overlap,
   ablation-reconf, ablation-stages, ablation-correlation,
   ablation-sensitivity, ablation-heuristic, explore-json.

   Options: --no-perf skips the Bechamel suite, --jobs N runs the
   synthesis explorers on N domains, and explore-json (with optional
   --json FILE, --tiny, --label TEXT) appends a machine-readable perf
   record to the benchmark trajectory (see docs/BENCH.md).
   check-trajectory gates the trajectory file: it fails when the
   freshest record's optimal costs diverge across job counts or its
   aggregate speedup regressed >30%% against the previous record. *)

module I = Spi.Ids
module F1 = Paper.Figure1
module F2 = Paper.Figure2
module V = Variants

(* Global knobs, set once by the argv parse below. *)
let jobs = ref 1
let json_path = ref "BENCH_explore.json"
let tiny = ref false
let label = ref ""
let tolerance = ref 0.3

let header title =
  Format.printf "@.==================================================@.";
  Format.printf "%s@." title;
  Format.printf "==================================================@."

(* ------------------------------------------------------------------ *)
(* Table 1: system cost.                                               *)
(* ------------------------------------------------------------------ *)

let table1_solutions ?(jobs = 1) () =
  let tech = F2.table1_tech in
  let s1 = Synth.Explore.optimal_exn ~jobs tech [ F2.app1 ] in
  let s2 = Synth.Explore.optimal_exn ~jobs tech [ F2.app2 ] in
  let sup =
    match Synth.Superpose.superpose ~jobs tech [ F2.app1; F2.app2 ] with
    | Some r -> r
    | None -> failwith "superposition infeasible"
  in
  let var = Synth.Explore.optimal_exn ~jobs tech [ F2.app1; F2.app2 ] in
  (s1, s2, sup, var)

let names_of set =
  String.concat ", "
    (List.map I.Process_id.to_string (I.Process_id.Set.elements set))

let table1 () =
  header "Table 1: System Cost (paper: 34 / 38 / 57 / 41)";
  let s1, s2, sup, var = table1_solutions ~jobs:!jobs () in
  let apps = [ F2.app1; F2.app2 ] in
  Format.printf "%-14s | %-26s | %-22s | %5s | %5s@." "" "Software" "Hardware"
    "Total" "Time";
  Format.printf "%s@." (String.make 85 '-');
  let time_of decisions = Synth.Design_time.time ~effort_per_decision:6 ~fixed_overhead:43 ~decisions () in
  let d1 = I.Process_id.Set.cardinal F2.app1.Synth.App.procs in
  let d2 = I.Process_id.Set.cardinal F2.app2.Synth.App.procs in
  let t1 = time_of d1 and t2 = time_of d2 in
  (* variant-aware decisions cost more per decision: joint feasibility
     over all applications is checked at each one *)
  let t_var =
    Synth.Design_time.time ~effort_per_decision:12 ~fixed_overhead:43
      ~decisions:(Synth.Design_time.decisions_variant_aware apps)
      ()
  in
  let row name binding total time =
    Format.printf "%-14s | %-26s | %-22s | %5d | %5d@." name
      (names_of (Synth.Binding.sw_processes binding))
      (names_of (Synth.Binding.hw_processes binding))
      total time
  in
  row "Application 1" s1.Synth.Explore.binding s1.Synth.Explore.cost.Synth.Cost.total t1;
  row "Application 2" s2.Synth.Explore.binding s2.Synth.Explore.cost.Synth.Cost.total t2;
  row "Superposition" sup.Synth.Superpose.merged sup.Synth.Superpose.cost.Synth.Cost.total (t1 + t2);
  row "With variants" var.Synth.Explore.binding var.Synth.Explore.cost.Synth.Cost.total t_var;
  Format.printf "@.Decision counts: independent %d vs variant-aware %d (speedup %.2fx)@."
    (Synth.Design_time.decisions_independent apps)
    (Synth.Design_time.decisions_variant_aware apps)
    (Synth.Design_time.speedup apps);
  Format.printf "Shape checks: variants < superposition: %b; each app < variants: %b@."
    (var.Synth.Explore.cost.Synth.Cost.total < sup.Synth.Superpose.cost.Synth.Cost.total)
    (s1.Synth.Explore.cost.Synth.Cost.total < var.Synth.Explore.cost.Synth.Cost.total
    && s2.Synth.Explore.cost.Synth.Cost.total < var.Synth.Explore.cost.Synth.Cost.total)

(* ------------------------------------------------------------------ *)
(* Figure 1: the SPI example.                                          *)
(* ------------------------------------------------------------------ *)

let figure1_sim policy = Sim.Engine.run ~policy ~stimuli:(F1.stimuli_mixed ~n:12) F1.model

let figure1 () =
  header "Figure 1: SPI example (p1 -> c1 -> p2 -> c2 -> p3)";
  let p2 = Spi.Model.get_process F1.p2 F1.model in
  Format.printf "p2 parameter intervals: latency=%a consume(c1)=%a produce(c2)=%a@."
    Interval.pp (Spi.Process.latency_hull p2) Interval.pp
    (Spi.Process.consumption_hull p2 F1.c1)
    Interval.pp
    (Spi.Process.production_hull p2 F1.c2);
  Format.printf "mode table:@.";
  List.iter (fun m -> Format.printf "  %a@." Spi.Mode.pp m) (Spi.Process.modes p2);
  Format.printf "%-12s | %8s | %8s | %10s@." "policy" "end" "firings" "p3 outputs";
  List.iter
    (fun policy ->
      let r = figure1_sim policy in
      Format.printf "%-12s | %8d | %8d | %10d@."
        (Format.asprintf "%a" Sim.Engine.pp_policy policy)
        r.Sim.Engine.end_time r.Sim.Engine.firings
        (List.length (Sim.Trace.completions ~process:F1.p3 r.Sim.Engine.trace)))
    [ Sim.Engine.Best_case; Sim.Engine.Typical; Sim.Engine.Worst_case ]

(* ------------------------------------------------------------------ *)
(* Figure 2: the system with two function variants.                    *)
(* ------------------------------------------------------------------ *)

let figure2 () =
  header "Figure 2: system with two function variants";
  V.System.validate_exn F2.system;
  Format.printf "%a@." V.System.pp F2.system;
  List.iter (fun i -> Format.printf "%a@." V.Interface.pp i) (V.System.interfaces F2.system);
  Format.printf "@.derived applications (cluster substitution):@.";
  List.iter
    (fun (clusters, model) ->
      Format.printf "  %-8s -> %a@."
        (String.concat "+" (List.map I.Cluster_id.to_string clusters))
        Spi.Model.pp_stats model)
    (V.Flatten.applications F2.system);
  Format.printf "@.variant space: %d combinations@."
    (V.Variant_space.independent_count F2.system)

(* ------------------------------------------------------------------ *)
(* Figure 3: run-time variant selection.                               *)
(* ------------------------------------------------------------------ *)

let figure3_run tag =
  let model, configurations = V.Flatten.abstract F2.system_with_selection in
  let stimuli =
    {
      Sim.Engine.at = 0;
      channel = F2.cv;
      token = Spi.Token.make ~tags:(Spi.Tag.Set.singleton tag) ();
    }
    :: List.init 6 (fun i ->
           {
             Sim.Engine.at = 2 + (3 * i);
             channel = F2.cx;
             token = Spi.Token.make ~payload:(i + 1) ();
           })
  in
  Sim.Engine.run ~configurations ~stimuli ~firing_budget:[ (F2.p_user, 0) ] model

let figure3 () =
  header "Figure 3: run-time variant selection (PUser tags CV)";
  let site =
    match V.System.find_site F2.iface1 F2.system_with_selection with
    | Some s -> s
    | None -> assert false
  in
  let r =
    V.Extraction.extract ~process_name:"PVar" ~wiring:site.V.Structure.wiring
      site.V.Structure.iface
  in
  Format.printf "extracted PVar:@.%a@." V.Extraction.pp_result r;
  Format.printf "@.%-8s | %8s | %12s | %12s | %10s@." "choice" "end"
    "reconfs" "reconf time" "delivered";
  List.iter
    (fun (name, tag) ->
      let res = figure3_run tag in
      Format.printf "%-8s | %8d | %12d | %12d | %10d@." name
        res.Sim.Engine.end_time
        (List.length (Sim.Trace.reconfigurations res.Sim.Engine.trace))
        res.Sim.Engine.reconfiguration_time
        (List.length (Sim.Trace.tokens_produced_on F2.cy res.Sim.Engine.trace)))
    [ ("V1", F2.tag_v1); ("V2", F2.tag_v2) ]

(* ------------------------------------------------------------------ *)
(* Figure 4: the reconfigurable video system.                          *)
(* ------------------------------------------------------------------ *)

let figure4_run ~with_valves =
  let built = Video.System.build { Video.System.default_params with with_valves } in
  let stimuli =
    Video.Scenario.switching_demo ~frames:60 ~period:5
      ~switches:[ (52, "fB"); (151, "fA"); (233, "fB") ]
      ()
  in
  let result =
    Sim.Engine.run ~configurations:built.Video.System.configurations ~stimuli
      built.Video.System.model
  in
  Video.Checker.check result

let figure4 () =
  header "Figure 4: reconfigurable video system (3 user requests, 60 frames)";
  Format.printf "%-10s | %6s | %6s | %5s | %7s | %7s | %7s | %s@." "valves"
    "in" "clean" "held" "dropped" "invalid" "reconfs" "safe";
  List.iter
    (fun with_valves ->
      let rep = figure4_run ~with_valves in
      Format.printf "%-10s | %6d | %6d | %5d | %7d | %7d | %7d | %s@."
        (if with_valves then "active" else "removed")
        rep.Video.Checker.frames_in rep.Video.Checker.clean
        rep.Video.Checker.held rep.Video.Checker.dropped
        (List.length rep.Video.Checker.invalid_clean)
        rep.Video.Checker.reconfigurations
        (if Video.Checker.is_safe rep then "SAFE" else "VIOLATED"))
    [ true; false ];
  Format.printf "@.Property: the suspend/resume valves guarantee that no \
                 invalid image is emitted.@."

(* ------------------------------------------------------------------ *)
(* Ablation A1: serialization-order sensitivity ([5], [6]).            *)
(* ------------------------------------------------------------------ *)

let generated_apps_and_tech ?(shared = 3) ?(cluster = 2) ~seed ~sites ~variants
    () =
  let system =
    V.Generator.generate
      {
        V.Generator.seed;
        shared_processes = shared;
        sites;
        variants_per_site = variants;
        cluster_processes = cluster;
        latency_range = (1, 10);
      }
  in
  let apps = Synth.App.of_system system in
  (* mix the seed into the weights: the generated process names repeat
     across seeds, and synthesis only sees loads/areas *)
  let weight pid = 1 + (((V.Generator.process_weight pid * 31) + (seed * 53)) mod 100) in
  let tech =
    Synth.Tech.of_weights ~weight
      (I.Process_id.Set.elements (Synth.App.union_procs apps))
  in
  (apps, tech)

let ablation_serial () =
  header "Ablation A1: serialization order influence (baselines [5],[6])";
  Format.printf "%-6s | %6s | %10s | %10s | %10s | %12s@." "seed" "apps"
    "best ord" "worst ord" "variant" "all-in-one";
  let spread_count = ref 0 and total = ref 0 in
  List.iter
    (fun seed ->
      let apps, tech = generated_apps_and_tech ~seed ~sites:2 ~variants:2 () in
      let orders = Synth.Serial.all_orders tech apps in
      let var = Synth.Explore.optimal tech apps in
      let aio = Synth.Serial.all_in_one tech apps in
      let cost_str = function
        | None -> "infeas"
        | Some c -> string_of_int c
      in
      let var_cost =
        Option.map (fun (s : Synth.Explore.solution) -> s.Synth.Explore.cost.Synth.Cost.total) var
      in
      let aio_cost =
        Option.map (fun (s : Synth.Explore.solution) -> s.Synth.Explore.cost.Synth.Cost.total) aio
      in
      match Synth.Serial.cost_spread orders with
      | Some (best, worst) ->
        incr total;
        if worst > best then incr spread_count;
        Format.printf "%-6d | %6d | %10d | %10d | %10s | %12s@." seed
          (List.length apps) best worst (cost_str var_cost) (cost_str aio_cost)
      | None ->
        Format.printf "%-6d | %6d | %10s | %10s | %10s | %12s@." seed
          (List.length apps) "infeas" "infeas" (cost_str var_cost)
          (cost_str aio_cost))
    [ 1; 2; 3; 4; 5; 6; 7; 8 ];
  Format.printf "@.order made a cost difference in %d/%d instances; \
                 variant-aware never exceeds the best order.@."
    !spread_count !total

(* ------------------------------------------------------------------ *)
(* Ablation A2: design time vs number of variants.                     *)
(* ------------------------------------------------------------------ *)

let ablation_designtime () =
  header "Ablation A2: design time (decisions) vs number of variants";
  Format.printf "%-9s | %12s | %14s | %8s@." "variants" "independent"
    "variant-aware" "speedup";
  List.iter
    (fun variants ->
      let system =
        V.Generator.generate
          {
            V.Generator.seed = 7;
            shared_processes = 6;
            sites = 1;
            variants_per_site = variants;
            cluster_processes = 3;
            latency_range = (1, 10);
          }
      in
      let apps = Synth.App.of_system system in
      Format.printf "%-9d | %12d | %14d | %8.2f@." variants
        (Synth.Design_time.decisions_independent apps)
        (Synth.Design_time.decisions_variant_aware apps)
        (Synth.Design_time.speedup apps))
    [ 1; 2; 3; 4; 5; 6 ];
  Format.printf "@.Shared processes are considered once in the variant-aware \
                 flow, so the gap widens with the variant count (Section 5).@."

(* ------------------------------------------------------------------ *)
(* Ablation A3: cost benefit vs functional overlap.                    *)
(* ------------------------------------------------------------------ *)

let ablation_overlap () =
  header "Ablation A3: cost benefit vs functional overlap";
  Format.printf "%-14s | %13s | %13s | %8s@." "shared/variant"
    "superposition" "variant-aware" "saving";
  List.iter
    (fun (shared, cluster) ->
      let system =
        V.Generator.generate
          {
            V.Generator.seed = 11;
            shared_processes = shared;
            sites = 1;
            variants_per_site = 2;
            cluster_processes = cluster;
            latency_range = (1, 10);
          }
      in
      let apps = Synth.App.of_system system in
      let tech =
        Synth.Tech.of_weights ~weight:V.Generator.process_weight
          (I.Process_id.Set.elements (Synth.App.union_procs apps))
      in
      match Synth.Superpose.superpose tech apps, Synth.Explore.optimal tech apps with
      | Some sup, Some var ->
        let s = sup.Synth.Superpose.cost.Synth.Cost.total in
        let v = var.Synth.Explore.cost.Synth.Cost.total in
        Format.printf "%-14s | %13d | %13d | %7.1f%%@."
          (Format.sprintf "%d/%d" shared cluster)
          s v
          (100. *. float_of_int (s - v) /. float_of_int s)
      | _ ->
        Format.printf "%-14s | infeasible@." (Format.sprintf "%d/%d" shared cluster))
    [ (1, 5); (2, 4); (3, 3); (4, 3); (5, 2); (6, 2); (8, 1) ];
  Format.printf "@.The more functionality the variants share, the larger the \
                 advantage of variant-aware optimization.@."

(* ------------------------------------------------------------------ *)
(* Ablation A4: frame loss vs reconfiguration latency.                 *)
(* ------------------------------------------------------------------ *)

let ablation_reconf () =
  header "Ablation A4: frame loss vs reconfiguration latency (Fig. 4 system)";
  Format.printf "%-8s | %6s | %6s | %5s | %7s | %12s | %s@." "t_conf" "in"
    "clean" "held" "dropped" "reconf time" "safe";
  List.iter
    (fun t_conf ->
      let built =
        Video.System.build
          {
            Video.System.variants = [ ("fA", 2, t_conf); ("fB", 3, t_conf) ];
            with_valves = true;
            stages = 2;
          }
      in
      let stimuli =
        Video.Scenario.switching_demo ~frames:40 ~period:5
          ~switches:[ (52, "fB"); (120, "fA") ]
          ()
      in
      let result =
        Sim.Engine.run ~configurations:built.Video.System.configurations
          ~stimuli built.Video.System.model
      in
      let rep = Video.Checker.check result in
      Format.printf "%-8d | %6d | %6d | %5d | %7d | %12d | %s@." t_conf
        rep.Video.Checker.frames_in rep.Video.Checker.clean
        rep.Video.Checker.held rep.Video.Checker.dropped
        rep.Video.Checker.reconfiguration_time
        (if Video.Checker.is_safe rep then "SAFE" else "VIOLATED"))
    [ 0; 2; 4; 8; 16; 32 ];
  Format.printf
    "@.Longer reconfiguration latencies keep the valves closed longer:      frames are dropped or held instead of being emitted invalid.@."

(* ------------------------------------------------------------------ *)
(* Ablation A5: chain length (the paper uses 2 stages "to simplify").  *)
(* ------------------------------------------------------------------ *)

let ablation_stages () =
  header "Ablation A5: N-stage chains (Fig. 4 generalized)";
  Format.printf "%-7s | %6s | %6s | %7s | %12s | %10s | %s@." "stages" "clean"
    "held" "dropped" "mean latency" "worst" "safe";
  List.iter
    (fun stages ->
      let built =
        Video.System.build { Video.System.default_params with stages }
      in
      let stimuli =
        Video.Scenario.switching_demo ~frames:40 ~period:6
          ~switches:[ (60, "fB"); (150, "fA") ]
          ()
      in
      let result =
        Sim.Engine.run ~configurations:built.Video.System.configurations
          ~stimuli built.Video.System.model
      in
      let rep = Video.Checker.check ~stages result in
      let mean, worst =
        match Video.Checker.latency_stats rep with
        | Some (m, w) -> (m, w)
        | None -> (0., 0)
      in
      Format.printf "%-7d | %6d | %6d | %7d | %12.1f | %10d | %s@." stages
        rep.Video.Checker.clean rep.Video.Checker.held
        rep.Video.Checker.dropped mean worst
        (if Video.Checker.is_safe rep then "SAFE" else "VIOLATED"))
    [ 1; 2; 3; 4; 6 ];
  Format.printf
    "@.The suspend/resume protocol scales with the chain: per-frame      latency grows linearly, safety is preserved at every length.@."

(* ------------------------------------------------------------------ *)
(* Ablation A6: mode correlation vs interval hulls (the [9] lineage).  *)
(* ------------------------------------------------------------------ *)

let ablation_correlation () =
  header "Ablation A6: timing bounds, interval hulls vs mode correlation";
  let model = F1.model in
  let constraint_ bound =
    Spi.Constraint_.latency_path ~name:"p1~>p3" ~from_:F1.p1 ~to_:F1.p3 ~bound
  in
  Format.printf "Figure 1 model, end-to-end constraint p1 ~> p3:@.@.";
  Format.printf "%-24s | %s@." "analysis" "outcome (bound 8)";
  Format.printf "%-24s | %a@." "interval hull"
    Spi.Constraint_.pp_outcome
    (Spi.Correlation.hull_outcome model (constraint_ 8));
  (match Spi.Correlation.infer ~channel:F1.c1 model with
  | None -> Format.printf "no correlation inferable@."
  | Some corr ->
    List.iter
      (fun (name, outcome) ->
        Format.printf "%-24s | %a@." ("scenario " ^ name)
          Spi.Constraint_.pp_outcome outcome)
      (Spi.Correlation.check model corr (constraint_ 8));
    Format.printf "%-24s | %a@." "correlated worst case"
      Spi.Constraint_.pp_outcome
      (Spi.Correlation.worst_case model corr (constraint_ 8)));
  Format.printf
    "@.The tags p1 attaches make p2 determinate (Section 2): under the      'a' scenario the chain meets a bound the hull analysis cannot      certify.@."

(* ------------------------------------------------------------------ *)
(* Ablation A7: sensitivity of the Table 1 optimum.                    *)
(* ------------------------------------------------------------------ *)

let ablation_sensitivity () =
  header "Ablation A7: sensitivity of the Table 1 mapping";
  let apps = [ F2.app1; F2.app2 ] in
  Format.printf "%-14s | %-9s | %s@." "process" "parameter" "optimal decision";
  let sweep pid name parameter lo hi =
    match
      Synth.Sensitivity.flip_point ~parameter ~range:(lo, hi) F2.table1_tech
        apps pid
    with
    | Some flip ->
      Format.printf "%-14s | %-9s | %a@." name
        (match parameter with
        | Synth.Sensitivity.Hw_area -> "hw area"
        | Synth.Sensitivity.Sw_load -> "sw load")
        Synth.Sensitivity.pp_flip flip
    | None ->
      Format.printf "%-14s | %-9s | stable over [%d, %d]@." name
        (match parameter with
        | Synth.Sensitivity.Hw_area -> "hw area"
        | Synth.Sensitivity.Sw_load -> "sw load")
        lo hi
  in
  sweep F2.pa "PA" Synth.Sensitivity.Hw_area 26 80;
  sweep F2.pa "PA" Synth.Sensitivity.Sw_load 40 100;
  sweep F2.pb "PB" Synth.Sensitivity.Hw_area 30 200;
  sweep F2.pb "PB" Synth.Sensitivity.Sw_load 30 100;
  sweep F2.unit_g1 "cluster g1" Synth.Sensitivity.Hw_area 19 100;
  sweep F2.unit_g2 "cluster g2" Synth.Sensitivity.Sw_load 55 100;
  Format.printf
    "@.PA's ASIC carries the whole variant-aware advantage: 5 units of      area drift (26 -> 31) and the optimum reverts to a software PA      with PB in hardware.@."

(* ------------------------------------------------------------------ *)
(* Ablation A8: heuristic vs exact partitioning.                       *)
(* ------------------------------------------------------------------ *)

let ablation_heuristic () =
  header "Ablation A8: greedy heuristic vs exact branch-and-bound";
  Format.printf "%-6s | %6s | %10s | %10s | %8s@." "seed" "procs" "heuristic"
    "optimal" "gap";
  List.iter
    (fun seed ->
      let apps, tech = generated_apps_and_tech ~seed ~sites:2 ~variants:2 () in
      let procs =
        I.Process_id.Set.cardinal (Synth.App.union_procs apps)
      in
      match Synth.Greedy.quality_gap tech apps with
      | Some (heuristic, optimal) ->
        Format.printf "%-6d | %6d | %10d | %10d | %7.1f%%@." seed procs
          heuristic optimal
          (100.
          *. float_of_int (heuristic - optimal)
          /. float_of_int (max 1 optimal))
      | None -> Format.printf "%-6d | %6d | infeasible@." seed procs)
    [ 1; 2; 3; 4; 5; 6; 7; 8 ];
  Format.printf
    "@.The greedy relief-per-cost heuristic stays within a modest gap of      the exact optimum while scaling linearly; use it past ~30      processes where 2^n search stops being interactive.@."

(* ------------------------------------------------------------------ *)
(* Benchmark trajectory: the explore-json experiment times the         *)
(* branch-and-bound exploration workloads at several domain counts and *)
(* appends one machine-readable record per invocation to a JSON file   *)
(* (default BENCH_explore.json), so runs stay comparable across PRs.   *)
(* Schema: docs/BENCH.md.                                              *)
(* ------------------------------------------------------------------ *)

type explore_run = {
  run_jobs : int;
  wall_s : float;
  run_cost : int option;
  run_explored : int;
  run_pruned : int;
}

let time_explore ~reps f =
  (* min-of-reps wall time; the cost/counters come from the last run *)
  let best_wall = ref infinity in
  let last = ref None in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    let r = f () in
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best_wall then best_wall := dt;
    last := Some r
  done;
  (!best_wall, Option.get !last)

(* Front-loaded technology for the exploration workloads: the first
   [heads] processes in pid order (= the explorer's decision order) get
   a large hardware area and a small software load, modelling a system
   whose front-end blocks are ASIC-expensive but cheap to schedule.
   This is the regime where branch order matters: the hw-first
   sequential reference pays the full cost bound shell once per wrong
   early hardware commitment, while the greedy-seeded best-first
   parallel search discards those subtrees against the shared
   incumbent. *)
let skewed_apps_and_tech ~heads ~head_area ~shared ~cluster ~seed ~sites
    ~variants () =
  let system =
    V.Generator.generate
      {
        V.Generator.seed;
        shared_processes = shared;
        sites;
        variants_per_site = variants;
        cluster_processes = cluster;
        latency_range = (1, 10);
      }
  in
  let apps = Synth.App.of_system system in
  let pids = I.Process_id.Set.elements (Synth.App.union_procs apps) in
  let weight pid =
    1 + (((V.Generator.process_weight pid * 31) + (seed * 53)) mod 100)
  in
  let tech =
    Synth.Tech.make ~processor_cost:15
      (List.mapi
         (fun i pid ->
           let w = weight pid in
           if i < heads then
             (pid, Synth.Tech.both ~load:(4 + (w mod 5)) ~area:(head_area + w))
           else (pid, Synth.Tech.both ~load:((w / 3) + 5) ~area:(w + 10)))
         pids)
  in
  (apps, tech, system)

(* Exploration workloads: the Table 1 system plus Figure-2-style
   generated variant systems large enough that the search tree is the
   dominant cost.  Each workload carries its own processor capacity,
   tuned so the optimum mixes hardware and software placements (an
   all-software optimum collapses the tree; an all-hardware one makes
   the bound exact).  [--tiny] keeps only small instances for CI
   smoke. *)
let explore_workloads () =
  let table1 =
    ( "table1",
      F2.table1_tech,
      [ F2.app1; F2.app2 ],
      Synth.Schedule.default_capacity,
      F2.system )
  in
  let gen name ~seed ~sites ~variants ~shared ~cluster ~capacity =
    let apps, tech, system =
      skewed_apps_and_tech ~heads:6 ~head_area:300 ~shared ~cluster ~seed
        ~sites ~variants ()
    in
    (name, tech, apps, capacity, system)
  in
  if !tiny then
    [
      table1;
      gen "figure2-gen-tiny" ~seed:5 ~sites:2 ~variants:2 ~shared:3 ~cluster:2
        ~capacity:120;
    ]
  else
    [
      table1;
      gen "figure2-gen-medium" ~seed:9 ~sites:3 ~variants:2 ~shared:8
        ~cluster:3 ~capacity:120;
      gen "figure2-gen-wide" ~seed:13 ~sites:2 ~variants:4 ~shared:7 ~cluster:3
        ~capacity:120;
      gen "figure2-gen-large" ~seed:9 ~sites:3 ~variants:3 ~shared:8 ~cluster:3
        ~capacity:140;
    ]

(* Compiled-vs-interpreted simulation over a workload's flattened
   applications (figure2-style systems flatten to one model per cluster
   selection).  The timed section is the event loop only: plans are
   specialized once up front and their one-off cost reported apart as
   [compile_s], matching how simulate/faultsim amortize compilation
   across runs.  Divergent results abort the benchmark — the record
   must never publish a speedup for a wrong simulation. *)
(* Source channels — consumed by some mode, produced by none — are
   where the environment feeds a flattened model; inject a burst of
   tokens on each so the event loop has sustained work to time. *)
let source_stimuli ~burst model =
  let consumed, produced =
    List.fold_left
      (fun (c, p) proc ->
        List.fold_left
          (fun (c, p) mode ->
            ( I.Channel_id.Set.union c (Spi.Mode.consumed_channels mode),
              I.Channel_id.Set.union p (Spi.Mode.produced_channels mode) ))
          (c, p) (Spi.Process.modes proc))
      (I.Channel_id.Set.empty, I.Channel_id.Set.empty)
      (Spi.Model.processes model)
  in
  let sources = I.Channel_id.Set.diff consumed produced in
  List.concat_map
    (fun channel ->
      List.init burst (fun i ->
          { Sim.Engine.at = i; channel; token = Spi.Token.make ~payload:i () }))
    (I.Channel_id.Set.elements sources)

let sim_measurement ~reps name system =
  let models = List.map snd (V.Flatten.applications system) in
  let stimuli = List.map (source_stimuli ~burst:200) models in
  let limits = Sim.Engine.default_limits in
  let t0 = Unix.gettimeofday () in
  let plans = List.map Sim.Compile.compile models in
  let compile_s = Unix.gettimeofday () -. t0 in
  let time f =
    let best = ref infinity and last = ref [] in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      let rs = f () in
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt;
      last := rs
    done;
    (!best, !last)
  in
  let interp_wall, interp =
    time (fun () ->
        List.map2
          (fun m stimuli -> Sim.Engine.run ~limits ~stimuli m)
          models stimuli)
  in
  let compiled_wall, compiled =
    time (fun () ->
        List.map2
          (fun p stimuli -> Sim.Compile.run ~limits ~stimuli p)
          plans stimuli)
  in
  let digest (r : Sim.Engine.result) =
    (r.Sim.Engine.end_time, r.Sim.Engine.firings, r.Sim.Engine.outcome)
  in
  if List.map digest interp <> List.map digest compiled then begin
    Format.eprintf "explore-json: COMPILED SIM DIVERGES on %s@." name;
    exit 1
  end;
  let speedup = if compiled_wall > 0. then interp_wall /. compiled_wall else 1. in
  (interp_wall, compiled_wall, compile_s, speedup)

(* One featured family pass over the workload's variant space vs N
   per-configuration engine runs on the flattened models — the
   family-based simulation claim, measured.  Stimuli go to the shared
   (unprefixed) boundary channels so the family prefix stays shared for
   as long as the variants agree.  Divergent results abort the
   benchmark, exactly like the compiled-vs-interpreted arm: the family
   engine is only a speedup if it is also the same answer. *)
let family_measurement ~reps name system =
  let assignments = V.Variant_space.enumerate system in
  let flatten a = V.Flatten.flatten system (V.Variant_space.to_choice a) in
  (* One scenario, one driven channel: the last site's input port — the
     regime where family-based simulation pays.  The scenario's dataflow
     never reaches the sites upstream, so their variability is never
     split and those configurations ride the same sub-family to the end,
     while every per-configuration pass still simulates the full
     flattened model.  Tokens are staggered so injections interleave
     with firings instead of front-loading the heap. *)
  let stimuli =
    let driven =
      match List.rev (V.System.sites system) with
      | site :: _ ->
        List.find_map
          (fun port ->
            if V.Port.is_input port then
              List.assoc_opt (V.Port.id port) site.V.Structure.wiring
            else None)
          site.V.Structure.iface.V.Structure.iface_ports
      | [] -> None
    in
    let driven =
      match driven with
      | Some c -> Some c
      | None -> (
        (* no sites: fall back to the first shared source channel *)
        match
          List.filter
            (fun s ->
              not
                (String.contains
                   (I.Channel_id.to_string s.Sim.Engine.channel)
                   '.'))
            (source_stimuli ~burst:1 (flatten (List.hd assignments)))
        with
        | s :: _ -> Some s.Sim.Engine.channel
        | [] -> None)
    in
    match driven with
    | None -> []
    | Some channel ->
      List.init 200 (fun i ->
          {
            Sim.Engine.at = 1 + (2 * i);
            channel;
            token = Spi.Token.make ~payload:i ();
          })
  in
  let limits = Sim.Engine.default_limits in
  let time f =
    let best = ref infinity and last = ref None in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      let r = f () in
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt;
      last := Some r
    done;
    (!best, Option.get !last)
  in
  (* each per-configuration pass flattens its own model, exactly as a
     sequential sweep over the space would — the family pass flattens
     inside [Sim.Family.run] too, so both arms carry that cost *)
  let npass_wall, per_config =
    time (fun () ->
        List.map (fun a -> Sim.Engine.run ~limits ~stimuli (flatten a))
          assignments)
  in
  let family_wall, report =
    time (fun () -> Sim.Family.run ~limits ~stimuli system)
  in
  (* the compiled featured pass amortizes its plan across runs (that is
     its contract — daemons and sweeps reuse plans), so the plan build
     sits outside the timed region, like [compile_s] in the sim arm *)
  let plan = Sim.Family_compiled.plan system in
  let fam_compiled_wall, compiled_report =
    time (fun () -> Sim.Family_compiled.run ~limits ~stimuli plan)
  in
  let digest (r : Sim.Engine.result) =
    (r.Sim.Engine.end_time, r.Sim.Engine.firings, r.Sim.Engine.outcome)
  in
  let digests_of (report : Sim.Family.report) =
    Array.to_list
      (Array.map (fun cr -> digest cr.Sim.Family.result) report.Sim.Family.runs)
  in
  if List.map digest per_config <> digests_of report then begin
    Format.eprintf "explore-json: FAMILY SIM DIVERGES on %s@." name;
    exit 1
  end;
  if List.map digest per_config <> digests_of compiled_report then begin
    Format.eprintf "explore-json: COMPILED FAMILY SIM DIVERGES on %s@." name;
    exit 1
  end;
  let speedup = if family_wall > 0. then npass_wall /. family_wall else 1. in
  let compiled_speedup =
    if fam_compiled_wall > 0. then npass_wall /. fam_compiled_wall else 1.
  in
  ( npass_wall,
    family_wall,
    fam_compiled_wall,
    speedup,
    compiled_speedup,
    List.length assignments )

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Format.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let record_to_json ~timestamp ~label ~max_jobs ~metrics workload_rows =
  let b = Buffer.create 1024 in
  let add fmt = Format.ksprintf (Buffer.add_string b) fmt in
  add "  {\n";
  add "    \"schema\": \"bench-explore/v1\",\n";
  add "    \"timestamp\": %.0f,\n" timestamp;
  if label <> "" then add "    \"label\": \"%s\",\n" (json_escape label);
  add "    \"max_jobs\": %d,\n" max_jobs;
  add "    \"workloads\": [\n";
  let n = List.length workload_rows in
  List.iteri
    (fun i
         ( name,
           processes,
           applications,
           capacity,
           runs,
           speedup,
           identical,
           (warm_wall, warm_cost, warm_explored),
           (sim_interp, sim_compiled, sim_compile, sim_speedup),
           ( fam_npass,
             fam_wall,
             fam_compiled_wall,
             fam_speedup,
             fam_compiled_speedup,
             fam_configs ) ) ->
      add "      {\n";
      add "        \"name\": \"%s\",\n" (json_escape name);
      add "        \"processes\": %d,\n" processes;
      add "        \"applications\": %d,\n" applications;
      add "        \"capacity\": %d,\n" capacity;
      add "        \"runs\": [\n";
      let m = List.length runs in
      List.iteri
        (fun j r ->
          add
            "          {\"jobs\": %d, \"wall_s\": %.6f, \"cost\": %s, \
             \"explored\": %d, \"pruned\": %d}%s\n"
            r.run_jobs r.wall_s
            (match r.run_cost with
            | Some c -> string_of_int c
            | None -> "null")
            r.run_explored r.run_pruned
            (if j = m - 1 then "" else ","))
        runs;
      add "        ],\n";
      add "        \"speedup_max_jobs\": %.3f,\n" speedup;
      (* warm-start measurement at max_jobs, an extra field the
         trajectory gate tolerates (and ignores) *)
      add "        \"warm\": {\"wall_s\": %.6f, \"cost\": %s, \"explored\": %d},\n"
        warm_wall
        (match warm_cost with Some c -> string_of_int c | None -> "null")
        warm_explored;
      (* compiled-vs-interpreted simulation, another tolerated extra
         field; results are digest-checked identical before recording *)
      add
        "        \"sim\": {\"interpreted_wall_s\": %.6f, \
         \"compiled_wall_s\": %.6f, \"compile_s\": %.6f, \"speedup\": \
         %.3f},\n"
        sim_interp sim_compiled sim_compile sim_speedup;
      (* one featured family pass vs N per-config engine passes, another
         tolerated-extra field; per-configuration results are
         digest-checked identical before recording *)
      add
        "        \"family\": {\"npass_wall_s\": %.6f, \"family_wall_s\": \
         %.6f, \"configs\": %d, \"speedup\": %.3f},\n"
        fam_npass fam_wall fam_configs fam_speedup;
      (* the same featured pass on Sim.Family_compiled's flat tables,
         against the same N-pass baseline; digest-checked identical *)
      add
        "        \"family_compiled\": {\"npass_wall_s\": %.6f, \
         \"family_wall_s\": %.6f, \"configs\": %d, \"speedup\": %.3f},\n"
        fam_npass fam_compiled_wall fam_configs fam_compiled_speedup;
      add "        \"costs_identical\": %b\n" identical;
      add "      }%s\n" (if i = n - 1 then "" else ","))
    workload_rows;
  add "    ],\n";
  let total j =
    List.fold_left
      (fun acc (_, _, _, _, runs, _, _, _, _, _) ->
        match List.find_opt (fun r -> r.run_jobs = j) runs with
        | Some r -> acc +. r.wall_s
        | None -> acc)
      0. workload_rows
  in
  let t1 = total 1 and tm = total max_jobs in
  add "    \"aggregate\": {\"wall_s_jobs1\": %.6f, \"wall_s_max_jobs\": %.6f, \
       \"speedup_max_jobs\": %.3f},\n"
    t1 tm
    (if tm > 0. then t1 /. tm else 1.);
  (* the explorer's obs/v1 snapshot for this record's runs, pre-rendered
     because it comes from a different JSON emitter *)
  add "    \"metrics\": %s\n" metrics;
  add "  }";
  Buffer.contents b

(* The trajectory file is a JSON array of records; appending rewrites
   the closing bracket instead of parsing the document. *)
let append_record path record =
  let existing =
    if Sys.file_exists path then begin
      let ic = open_in_bin path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let trimmed = String.trim s in
      if trimmed = "" || trimmed = "[]" then None
      else if String.length trimmed > 0
              && trimmed.[String.length trimmed - 1] = ']' then
        Some (String.sub trimmed 0 (String.length trimmed - 1))
      else None (* malformed: start a fresh array *)
    end
    else None
  in
  let oc = open_out_bin path in
  (match existing with
  | Some prefix ->
    output_string oc (String.trim prefix);
    output_string oc ",\n";
    output_string oc record;
    output_string oc "\n]\n"
  | None ->
    output_string oc "[\n";
    output_string oc record;
    output_string oc "\n]\n");
  close_out oc

let explore_json () =
  header "explore-json: parallel exploration perf trajectory";
  (* start the registry from zero so the embedded snapshot covers
     exactly this experiment's exploration work *)
  Obs.Registry.reset ();
  (* --jobs N narrows the sweep to [1; N] so a multicore CI matrix can
     produce one labelled record per core budget; the default remains
     the full 1/2/4 sweep *)
  let job_counts = if !jobs > 1 then [ 1; !jobs ] else [ 1; 2; 4 ] in
  let max_jobs = List.fold_left max 1 job_counts in
  let reps = if !tiny then 1 else 3 in
  let rows =
    List.map
      (fun (name, tech, apps, capacity, system) ->
        let processes =
          I.Process_id.Set.cardinal (Synth.App.union_procs apps)
        in
        let runs =
          List.map
            (fun jobs ->
              let wall, sol =
                time_explore ~reps (fun () ->
                    Synth.Explore.optimal ~jobs ~capacity tech apps)
              in
              {
                run_jobs = jobs;
                wall_s = wall;
                run_cost =
                  Option.map
                    (fun (s : Synth.Explore.solution) ->
                      s.Synth.Explore.cost.Synth.Cost.total)
                    sol;
                run_explored =
                  (match sol with
                  | Some s -> s.Synth.Explore.explored
                  | None -> 0);
                run_pruned =
                  (match sol with
                  | Some s -> s.Synth.Explore.pruned
                  | None -> 0);
              })
            job_counts
        in
        let wall_of j =
          match List.find_opt (fun r -> r.run_jobs = j) runs with
          | Some r -> r.wall_s
          | None -> nan
        in
        let speedup = wall_of 1 /. wall_of max_jobs in
        let identical =
          match runs with
          | [] -> true
          | r :: rest -> List.for_all (fun q -> q.run_cost = r.run_cost) rest
        in
        if not identical then begin
          Format.eprintf "explore-json: OPTIMAL COSTS DIVERGE on %s@." name;
          exit 1
        end;
        (* warm-vs-cold: remember the optimum in a throwaway store and
           re-solve with the stored binding as the warm incumbent.  The
           store may only change the work, never the answer — a cost
           mismatch here is a correctness bug, not a perf regression. *)
        let warm_wall, warm_cost, warm_explored =
          let path = Filename.temp_file "bench-explore-warm" ".journal" in
          Fun.protect
            ~finally:(fun () ->
              try Sys.remove path with Sys_error _ -> ())
            (fun () ->
              match Synth.Explore.solve ~jobs:max_jobs ~capacity tech apps with
              | Error _ -> (nan, None, 0)
              | Ok cold ->
                let store, _ = Store.Keyed.open_store ~fsync:false path in
                Synth.Bound_store.remember ~capacity store tech apps cold;
                let warm =
                  Synth.Bound_store.warm_binding ~capacity store tech apps
                in
                let wall, sol =
                  time_explore ~reps (fun () ->
                      match
                        Synth.Explore.solve ~jobs:max_jobs ~capacity ?warm
                          tech apps
                      with
                      | Ok s -> Some s
                      | Error _ -> None)
                in
                Store.Keyed.close store;
                ( wall,
                  Option.map
                    (fun (s : Synth.Explore.solution) ->
                      s.Synth.Explore.cost.Synth.Cost.total)
                    sol,
                  match sol with
                  | Some s -> s.Synth.Explore.explored
                  | None -> 0 ))
        in
        let cold_cost =
          match List.rev runs with r :: _ -> r.run_cost | [] -> None
        in
        if warm_cost <> cold_cost then begin
          Format.eprintf "explore-json: WARM COST DIVERGES FROM COLD on %s@."
            name;
          exit 1
        end;
        let (sim_interp, sim_compiled, _, sim_speedup) as sim =
          sim_measurement ~reps name system
        in
        let ( fam_npass,
              fam_wall,
              fam_compiled_wall,
              fam_speedup,
              fam_compiled_speedup,
              fam_configs ) as family =
          family_measurement ~reps name system
        in
        Format.printf
          "%-20s | %2d procs | %2d apps | jobs=1 %8.4fs | jobs=%d %8.4fs | \
           speedup %.2fx | cost %s | sim %8.4fs -> %8.4fs (%.2fx) | family \
           %d cfgs %8.4fs -> %8.4fs (%.2fx) -> compiled %8.4fs (%.2fx)@."
          name processes (List.length apps) (wall_of 1) max_jobs
          (wall_of max_jobs) speedup
          (match (List.hd runs).run_cost with
          | Some c -> string_of_int c
          | None -> "infeas")
          sim_interp sim_compiled sim_speedup fam_configs fam_npass fam_wall
          fam_speedup fam_compiled_wall fam_compiled_speedup;
        ( name,
          processes,
          List.length apps,
          capacity,
          runs,
          speedup,
          identical,
          (warm_wall, warm_cost, warm_explored),
          sim,
          family ))
      (explore_workloads ())
  in
  let metrics = Obs.Json.to_string (Obs.Registry.snapshot ()) in
  let record =
    record_to_json ~timestamp:(Unix.time ()) ~label:!label ~max_jobs ~metrics
      rows
  in
  append_record !json_path record;
  Format.printf "@.appended record to %s@." !json_path

(* ------------------------------------------------------------------ *)
(* check-trajectory: the CI regression gate over the trajectory file.  *)
(* ------------------------------------------------------------------ *)

let check_trajectory () =
  header (Format.sprintf "check-trajectory: gate on %s" !json_path);
  match Trajectory.check_file ~tolerance:!tolerance !json_path with
  | Ok summary -> Format.printf "PASS: %s@." summary
  | Error failures ->
    List.iter (fun f -> Format.printf "FAIL: %s@." f) failures;
    exit 1

(* ------------------------------------------------------------------ *)
(* Bechamel performance suite: one Test.make per experiment.           *)
(* ------------------------------------------------------------------ *)

let perf_tests =
  let open Bechamel in
  [
    Test.make ~name:"table1/variant-aware-synthesis"
      (Staged.stage (fun () ->
           ignore (Synth.Explore.optimal F2.table1_tech [ F2.app1; F2.app2 ])));
    Test.make ~name:"table1/superposition"
      (Staged.stage (fun () ->
           ignore (Synth.Superpose.superpose F2.table1_tech [ F2.app1; F2.app2 ])));
    Test.make ~name:"figure1/simulation"
      (Staged.stage (fun () -> ignore (figure1_sim Sim.Engine.Typical)));
    Test.make ~name:"figure2/flatten-all-applications"
      (Staged.stage (fun () -> ignore (V.Flatten.applications F2.system)));
    Test.make ~name:"figure3/extract-and-simulate"
      (Staged.stage (fun () -> ignore (figure3_run F2.tag_v2)));
    Test.make ~name:"figure4/video-simulation"
      (Staged.stage (fun () -> ignore (figure4_run ~with_valves:true)));
    Test.make ~name:"ablation/serial-all-orders"
      (Staged.stage (fun () ->
           let apps, tech = generated_apps_and_tech ~seed:3 ~sites:2 ~variants:2 () in
           ignore (Synth.Serial.all_orders tech apps)));
    Test.make ~name:"ablation/generator"
      (Staged.stage (fun () ->
           ignore
             (V.Generator.generate
                { V.Generator.default with sites = 2; variants_per_site = 3 })));
  ]

let run_perf () =
  header "Bechamel performance suite";
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:None () in
  let tests = Test.make_grouped ~name:"spi_variants" perf_tests in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  Format.printf "%-45s | %15s | %8s@." "benchmark" "time/run" "r^2";
  List.iter
    (fun (name, ols) ->
      let time =
        match Analyze.OLS.estimates ols with
        | Some (t :: _) -> t
        | Some [] | None -> nan
      in
      let r2 = Option.value ~default:nan (Analyze.OLS.r_square ols) in
      let pp_time ppf t =
        if Float.is_nan t then Format.pp_print_string ppf "n/a"
        else if t > 1e9 then Format.fprintf ppf "%.2f s" (t /. 1e9)
        else if t > 1e6 then Format.fprintf ppf "%.2f ms" (t /. 1e6)
        else if t > 1e3 then Format.fprintf ppf "%.2f us" (t /. 1e3)
        else Format.fprintf ppf "%.0f ns" t
      in
      Format.printf "%-45s | %15s | %8.4f@." name
        (Format.asprintf "%a" pp_time time)
        r2)
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("table1", table1);
    ("figure1", figure1);
    ("figure2", figure2);
    ("figure3", figure3);
    ("figure4", figure4);
    ("ablation-serial", ablation_serial);
    ("ablation-designtime", ablation_designtime);
    ("ablation-overlap", ablation_overlap);
    ("ablation-reconf", ablation_reconf);
    ("ablation-stages", ablation_stages);
    ("ablation-correlation", ablation_correlation);
    ("ablation-sensitivity", ablation_sensitivity);
    ("ablation-heuristic", ablation_heuristic);
    ("explore-json", explore_json);
  ]

let usage () =
  Format.eprintf
    "usage: main.exe [EXPERIMENT...] [--no-perf] [--jobs N] [--tiny] [--json \
     FILE] [--label TEXT] [--tolerance F]@.available experiments: %s, perf, \
     check-trajectory@."
    (String.concat ", " (List.map fst experiments));
  exit 1

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let args = List.filter (fun a -> a <> "--") args in
  let int_of name v =
    match int_of_string_opt v with
    | Some n -> n
    | None ->
      Format.eprintf "%s expects an integer, got %s@." name v;
      exit 1
  in
  let rec parse names = function
    | [] -> List.rev names
    | "--no-perf" :: rest -> parse names rest (* handled below *)
    | "--tiny" :: rest ->
      tiny := true;
      parse names rest
    | "--jobs" :: v :: rest ->
      jobs := int_of "--jobs" v;
      parse names rest
    | "--json" :: v :: rest ->
      json_path := v;
      parse names rest
    | "--label" :: v :: rest ->
      label := v;
      parse names rest
    | "--tolerance" :: v :: rest ->
      (match float_of_string_opt v with
      | Some t -> tolerance := t
      | None ->
        Format.eprintf "--tolerance expects a float, got %s@." v;
        exit 1);
      parse names rest
    | ("--jobs" | "--json" | "--label" | "--tolerance") :: [] -> usage ()
    | a :: _ when String.length a > 2 && String.sub a 0 2 = "--" -> usage ()
    | name :: rest -> parse (name :: names) rest
  in
  let no_perf = List.mem "--no-perf" args in
  let names = parse [] args in
  match names with
  | [] ->
    List.iter (fun (name, f) -> if name <> "explore-json" then f ()) experiments;
    if not no_perf then run_perf ()
  | names ->
    List.iter
      (fun name ->
        match List.assoc_opt name experiments with
        | Some f -> f ()
        | None ->
          if name = "perf" then run_perf ()
          else if name = "check-trajectory" then check_trajectory ()
          else usage ())
      names
