module J = Obs.Json

type run = { jobs : int; wall_s : float; cost : int option }

type workload = {
  w_name : string;
  runs : run list;
  speedup : float;
  sim_speedup : float option;
  family_speedup : float option;
  family_compiled_speedup : float option;
}

type record = {
  label : string;
  max_jobs : int;
  aggregate_speedup : float;
  workloads : workload list;
}

let ( let* ) = Result.bind

let field name conv j =
  match Option.bind (J.member name j) conv with
  | Some v -> Ok v
  | None -> Error (Format.sprintf "missing or ill-typed field %S" name)

let run_of_json j =
  let* jobs = field "jobs" J.to_int j in
  let* wall_s = field "wall_s" J.to_float j in
  let cost =
    match J.member "cost" j with
    | Some J.Null | None -> None
    | Some v -> J.to_int v
  in
  Ok { jobs; wall_s; cost }

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
    let* y = f x in
    let* ys = map_result f rest in
    Ok (y :: ys)

(* Optional per-field speedups: records written before the field existed
   simply lack it, and a mixed-version trajectory must stay checkable —
   a missing or ill-typed object yields [None] and the per-field gates
   skip it, they never crash. *)
let optional_speedup name j =
  Option.bind (J.member name j) (fun o ->
      Option.bind (J.member "speedup" o) J.to_float)

let workload_of_json j =
  let* w_name = field "name" J.to_string_opt j in
  let* runs_json = field "runs" J.to_list j in
  let* runs = map_result run_of_json runs_json in
  let* speedup = field "speedup_max_jobs" J.to_float j in
  let sim_speedup = optional_speedup "sim" j in
  let family_speedup = optional_speedup "family" j in
  let family_compiled_speedup = optional_speedup "family_compiled" j in
  Ok
    {
      w_name;
      runs;
      speedup;
      sim_speedup;
      family_speedup;
      family_compiled_speedup;
    }

let record_of_json j =
  let* schema = field "schema" J.to_string_opt j in
  if schema <> "bench-explore/v1" then
    Error (Format.sprintf "unexpected schema %S" schema)
  else
    let label =
      Option.value ~default:""
        (Option.bind (J.member "label" j) J.to_string_opt)
    in
    let* max_jobs = field "max_jobs" J.to_int j in
    let* aggregate = field "aggregate" Option.some j in
    let* aggregate_speedup = field "speedup_max_jobs" J.to_float aggregate in
    let* workloads_json = field "workloads" J.to_list j in
    let* workloads = map_result workload_of_json workloads_json in
    Ok { label; max_jobs; aggregate_speedup; workloads }

let records_of_string s =
  let* j = J.parse s in
  match j with
  | J.List records -> map_result record_of_json records
  | _ -> Error "trajectory file is not a JSON array"

let describe r =
  if r.label = "" then Format.sprintf "(unlabelled, %d workloads)" (List.length r.workloads)
  else Format.sprintf "%S (%d workloads)" r.label (List.length r.workloads)

let divergence_failures r =
  List.filter_map
    (fun w ->
      match w.runs with
      | [] | [ _ ] -> None
      | first :: rest ->
        if List.for_all (fun q -> q.cost = first.cost) rest then None
        else
          Some
            (Format.sprintf
               "workload %s: optimal cost differs across job counts (%s)"
               w.w_name
               (String.concat ", "
                  (List.map
                     (fun q ->
                       Format.sprintf "jobs=%d:%s" q.jobs
                         (match q.cost with
                         | Some c -> string_of_int c
                         | None -> "infeasible"))
                     w.runs))))
    r.workloads

let same_workload_set a b =
  let names r = List.sort compare (List.map (fun w -> w.w_name) r.workloads) in
  names a = names b

(* Mean of a per-workload optional speedup over the workloads that carry
   it; [None] when no workload does (old records, pre-field). *)
let mean_speedup get r =
  match List.filter_map get r.workloads with
  | [] -> None
  | vs ->
    Some (List.fold_left ( +. ) 0. vs /. float_of_int (List.length vs))

(* Per-field speedup gates (the "sim" compiled-vs-interpreted arm and
   the "family" one-pass-vs-N-passes arm).  A field is compared only
   when BOTH records carry it over the same workload set: a trajectory
   mixing records from before and after the field was introduced skips
   the gate instead of failing. *)
let field_gate ~tolerance ~field ~get ~baseline ~fresh failures =
  match baseline with
  | None -> Format.sprintf "%s not gated (no baseline)" field
  | Some base when not (same_workload_set base fresh) ->
    Format.sprintf "%s not gated (workload sets differ)" field
  | Some base -> (
    match (mean_speedup get base, mean_speedup get fresh) with
    | Some base_v, Some fresh_v ->
      let floor = (1. -. tolerance) *. base_v in
      if fresh_v < floor then
        failures :=
          !failures
          @ [
              Format.sprintf
                "%s speedup regressed: %.3fx, below %.3fx (%.0f%% of the \
                 baseline's %.3fx)"
                field fresh_v floor
                (100. *. (1. -. tolerance))
                base_v;
            ];
      Format.sprintf "%s speedup %.3fx against a %.3fx floor" field fresh_v
        floor
    | None, _ | _, None ->
      Format.sprintf "%s not gated (field absent in a record)" field)

let check ?(tolerance = 0.3) ~baseline ~fresh () =
  let failures = ref (divergence_failures fresh) in
  let summary =
    match baseline with
    | None ->
      Format.sprintf
        "fresh record %s: costs identical across job counts; no baseline \
         record, speedup not gated"
        (describe fresh)
    | Some base when not (same_workload_set base fresh) ->
      (* wall times of different workload sets (e.g. a --tiny CI record
         against a committed full-size one) are not comparable, so only
         the cost arm applies *)
      Format.sprintf
        "fresh record %s vs baseline %s: costs identical across job counts; \
         workload sets differ, speedup not gated"
        (describe fresh) (describe base)
    | Some base ->
      let floor = (1. -. tolerance) *. base.aggregate_speedup in
      if fresh.aggregate_speedup < floor then
        failures :=
          !failures
          @ [
              Format.sprintf
                "aggregate speedup regressed: %.3fx, below %.3fx (%.0f%% of \
                 the baseline's %.3fx)"
                fresh.aggregate_speedup floor
                (100. *. (1. -. tolerance))
                base.aggregate_speedup;
            ];
      Format.sprintf
        "fresh record %s vs baseline %s: costs identical across job counts; \
         aggregate speedup %.3fx against a %.3fx floor"
        (describe fresh) (describe base) fresh.aggregate_speedup floor
  in
  let sim_summary =
    field_gate ~tolerance ~field:"sim"
      ~get:(fun w -> w.sim_speedup)
      ~baseline ~fresh failures
  in
  let family_summary =
    field_gate ~tolerance ~field:"family"
      ~get:(fun w -> w.family_speedup)
      ~baseline ~fresh failures
  in
  let family_compiled_summary =
    field_gate ~tolerance ~field:"family_compiled"
      ~get:(fun w -> w.family_compiled_speedup)
      ~baseline ~fresh failures
  in
  let summary =
    Format.sprintf "%s; %s; %s; %s" summary sim_summary family_summary
      family_compiled_summary
  in
  match !failures with [] -> Ok summary | failures -> Error failures

let check_file ?tolerance path =
  if not (Sys.file_exists path) then
    Error [ Format.sprintf "trajectory file %s does not exist" path ]
  else begin
    let ic = open_in_bin path in
    let contents = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match records_of_string contents with
    | Error e -> Error [ Format.sprintf "%s: %s" path e ]
    | Ok [] -> Error [ Format.sprintf "%s holds no records" path ]
    | Ok records ->
      let rec last_two = function
        | [ fresh ] -> (None, fresh)
        | [ base; fresh ] -> (Some base, fresh)
        | _ :: rest -> last_two rest
        | [] -> assert false
      in
      let baseline, fresh = last_two records in
      check ?tolerance ~baseline ~fresh ()
  end
