(** Parsing and regression-gating of the [bench-explore/v1] perf
    trajectory (the JSON array that [bench/main.exe explore-json]
    appends to, see docs/BENCH.md).

    The gate compares the freshest record against the one before it:
    a CI run first appends a record for the current tree, then calls
    {!check_file}, so the baseline is the last committed record. *)

type run = { jobs : int; wall_s : float; cost : int option }

type workload = {
  w_name : string;
  runs : run list;
  speedup : float;  (** jobs=1 wall time over max-jobs wall time *)
  sim_speedup : float option;
      (** the ["sim"] object's compiled-vs-interpreted speedup; [None]
          for records written before the field existed *)
  family_speedup : float option;
      (** the ["family"] object's one-featured-pass vs N-per-config
          passes speedup; [None] for records without it *)
  family_compiled_speedup : float option;
      (** the ["family_compiled"] object's compiled-featured-pass vs
          N-per-config passes speedup ({!Sim.Family_compiled} against
          the same N-pass baseline as ["family"]); [None] for records
          without it *)
}

type record = {
  label : string;  (** empty when the record carries no label *)
  max_jobs : int;
  aggregate_speedup : float;
  workloads : workload list;
}

val record_of_json : Obs.Json.t -> (record, string) result
val records_of_string : string -> (record list, string) result

val check :
  ?tolerance:float ->
  baseline:record option ->
  fresh:record ->
  unit ->
  (string, string list) result
(** Gate one fresh record against an optional baseline.  Fails when

    - a workload's optimal cost differs across job counts (parallel
      exploration must be a pure speedup, never a different answer), or
    - the fresh aggregate max-jobs speedup has regressed below
      [(1 - tolerance)] of the baseline's ([tolerance] defaults to
      [0.3], i.e. a 30% regression budget for machine noise), or
    - a per-field speedup (["sim"], ["family"], ["family_compiled"])
      regressed past the same budget — compared only when both records carry the field over the
      same workload set, so mixed-version trajectories (records from
      before the field existed) skip the gate rather than fail.

    [Ok summary] describes what was checked; [Error failures] lists
    every violated condition. *)

val check_file : ?tolerance:float -> string -> (string, string list) result
(** Load a trajectory file and run {!check} with the last record as
    fresh and the previous one (if any) as baseline. *)
