(* spi-variants: command-line front end.

   Subcommands:
     models       list the bundled models
     validate     validate a variant system
     simulate     run a model under scripted stimuli and print stats
     analyze      static analysis (rate balance, deadlocks, queue bounds)
     dot          export a model graph to Graphviz
     synthesize   HW/SW partitioning for the Table 1 example
     pareto       cost/load frontier for the Table 1 example *)

open Cmdliner

module F1 = Paper.Figure1
module F2 = Paper.Figure2
module V = Variants

(* ------------------------------------------------------------------ *)
(* Model registry.                                                     *)
(* ------------------------------------------------------------------ *)

type bundled = {
  description : string;
  model : unit -> Spi.Model.t;
  configurations : unit -> V.Configuration.t list;
  stimuli : unit -> Sim.Engine.stimulus list;
  budgets : (Spi.Ids.Process_id.t * int) list;
  system : (unit -> V.System.t) option;
      (** the variant system behind the model, when it has one —
          [simulate --family] evaluates its whole space in one pass *)
}

let video_bundled ~with_valves =
  let built =
    lazy (Video.System.build { Video.System.default_params with with_valves })
  in
  {
    description =
      (if with_valves then
         "Figure 4 reconfigurable video system (valves active)"
       else "Figure 4 video system without valves (unsafe)");
    model = (fun () -> (Lazy.force built).Video.System.model);
    configurations =
      (fun () -> (Lazy.force built).Video.System.configurations);
    stimuli =
      (fun () ->
        Video.Scenario.switching_demo ~frames:40 ~period:5
          ~switches:[ (52, "fB"); (120, "fA") ]
          ());
    budgets = [];
    system = None;
  }

let figure3_bundled tag_name tag =
  let built = lazy (V.Flatten.abstract F2.system_with_selection) in
  {
    description =
      Format.sprintf
        "Figure 3 abstract model, user selects %s at start-up" tag_name;
    model = (fun () -> fst (Lazy.force built));
    configurations = (fun () -> snd (Lazy.force built));
    stimuli =
      (fun () ->
        {
          Sim.Engine.at = 0;
          channel = F2.cv;
          token = Spi.Token.make ~tags:(Spi.Tag.Set.singleton tag) ();
        }
        :: List.init 5 (fun i ->
               {
                 Sim.Engine.at = 2 + (3 * i);
                 channel = F2.cx;
                 token = Spi.Token.make ~payload:(i + 1) ();
               }));
    budgets = [ (F2.p_user, 0) ];
    system = Some (fun () -> F2.system_with_selection);
  }

let models : (string * bundled) list =
  [
    ( "figure1",
      {
        description = "Figure 1 SPI example (p1 -> p2 -> p3)";
        model = (fun () -> F1.model);
        configurations = (fun () -> []);
        stimuli = (fun () -> F1.stimuli_mixed ~n:8);
        budgets = [];
        system = None;
      } );
    ( "figure2-g1",
      {
        description = "Figure 2 system flattened with cluster g1";
        model =
          (fun () ->
            V.Flatten.flatten F2.system
              (V.Flatten.choice_of_list [ ("iface1", "g1") ]));
        configurations = (fun () -> []);
        stimuli =
          (fun () ->
            List.init 5 (fun i ->
                {
                  Sim.Engine.at = 1 + (3 * i);
                  channel = F2.cx;
                  token = Spi.Token.make ~payload:(i + 1) ();
                }));
        budgets = [];
        system = Some (fun () -> F2.system);
      } );
    ( "figure2-g2",
      {
        description = "Figure 2 system flattened with cluster g2";
        model =
          (fun () ->
            V.Flatten.flatten F2.system
              (V.Flatten.choice_of_list [ ("iface1", "g2") ]));
        configurations = (fun () -> []);
        stimuli =
          (fun () ->
            List.init 5 (fun i ->
                {
                  Sim.Engine.at = 1 + (3 * i);
                  channel = F2.cx;
                  token = Spi.Token.make ~payload:(i + 1) ();
                }));
        budgets = [];
        system = Some (fun () -> F2.system);
      } );
    ("figure3-v1", figure3_bundled "V1" F2.tag_v1);
    ("figure3-v2", figure3_bundled "V2" F2.tag_v2);
    ("video", video_bundled ~with_valves:true);
    ("video-novalves", video_bundled ~with_valves:false);
  ]

let model_names = List.map fst models

let lookup_model name =
  match List.assoc_opt name models with
  | Some b -> Ok b
  | None ->
    Error
      (`Msg
        (Format.sprintf "unknown model %s (available: %s)" name
           (String.concat ", " model_names)))

let model_arg =
  let model_conv =
    Arg.conv
      ( (fun s -> lookup_model s),
        (fun ppf (_ : bundled) -> Format.pp_print_string ppf "<model>") )
  in
  Arg.(
    required
    & pos 0 (some model_conv) None
    & info [] ~docv:"MODEL" ~doc:(Format.sprintf "One of: %s." (String.concat ", " model_names)))

(* ------------------------------------------------------------------ *)
(* Shared options.                                                     *)
(* ------------------------------------------------------------------ *)

(* Every command that exercises a hot path takes [--metrics FILE] and
   writes the obs/v1 registry snapshot there on the way out — including
   the early exits through [exit_on_outcome], which is why the write
   happens before the exit-code checks. *)
let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Write the obs/v1 metrics snapshot (counters, histograms, spans) \
           to $(docv) on exit; $(b,-) dumps the human-readable table to \
           stderr instead")

let write_metrics = function
  | None -> ()
  | Some "-" -> Obs.Registry.dump Format.err_formatter
  | Some path -> Obs.Registry.to_file path

let span_capacity_arg =
  Arg.(
    value
    & opt int (Obs.Registry.span_capacity ())
    & info [ "span-capacity" ] ~docv:"N"
        ~doc:
          "Capacity of the span ring buffer (older spans are dropped and \
           counted once it wraps)")

let apply_span_capacity n =
  if n < 1 then begin
    Format.eprintf "--span-capacity must be positive@.";
    exit 1
  end;
  Obs.Registry.set_span_capacity n

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"JOBS"
        ~doc:
          "Worker domains for the exploration (1 = sequential reference, 0 = \
           one per recommended domain).")

let resolve_jobs = function 0 -> Synth.Par.available_jobs () | j -> j

(* ------------------------------------------------------------------ *)
(* Commands.                                                           *)
(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* Textual-format commands.                                            *)
(* ------------------------------------------------------------------ *)

let file_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:"A system description in the .spi format")

let read_file path =
  let ic = open_in_bin path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  contents

let load_system path =
  let source = read_file path in
  try Ok (Lang.Parser.system_of_string source) with
  | Lang.Parser.Parse_error { line; col; message } ->
    Error (Lang.Error_report.render ~source ~path ~line ~col ~message)
  | Invalid_argument message -> Error (Format.sprintf "%s: %s" path message)

let with_system path f =
  match load_system path with
  | Ok system -> f system
  | Error message ->
    Format.eprintf "%s@." message;
    exit 1

let fmt_cmd =
  let run path =
    with_system path (fun system ->
        print_string (Lang.Printer.to_string system))
  in
  Cmd.v
    (Cmd.info "fmt" ~doc:"Parse and pretty-print a .spi file")
    Term.(const run $ file_arg)

let check_cmd =
  let run path =
    with_system path (fun system ->
        match V.System.validate system with
        | [] ->
          Format.printf "%s: OK (%a)@." path V.System.pp system;
          let constraints = V.System.constraints system in
          List.iter
            (fun (clusters, model) ->
              Format.printf "  %-24s %a@."
                (String.concat "+" (List.map Spi.Ids.Cluster_id.to_string clusters))
                Spi.Model.pp_stats model;
              let latency_of pid =
                match Spi.Model.find_process pid model with
                | Some p -> Interval.hi (Spi.Process.latency_hull p)
                | None -> 0
              in
              List.iter
                (fun (c, o) ->
                  Format.printf "    %a: %a@." Spi.Constraint_.pp c
                    Spi.Constraint_.pp_outcome o)
                (Spi.Constraint_.check_all ~latency_of model constraints))
            (V.Flatten.applications system)
        | errors ->
          Format.printf "%s: %d errors@." path (List.length errors);
          List.iter (fun e -> Format.printf "  %a@." V.System.pp_error e) errors;
          exit 1)
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Validate a .spi file and list its applications")
    Term.(const run $ file_arg)

let analyze_file_cmd =
  let run path =
    with_system path (fun system ->
        match V.System.validate system with
        | _ :: _ as errors ->
          List.iter (fun e -> Format.printf "%a@." V.System.pp_error e) errors;
          exit 1
        | [] ->
          List.iter
            (fun (clusters, model) ->
              Format.printf "@.=== %s ===@."
                (String.concat "+" (List.map Spi.Ids.Cluster_id.to_string clusters));
              Format.printf "rate balance:@.";
              List.iter
                (fun (cid, b) ->
                  Format.printf "  %-12s %a@."
                    (Spi.Ids.Channel_id.to_string cid)
                    Spi.Analysis.pp_balance b)
                (Spi.Analysis.balance_report model);
              (match Spi.Analysis.bottleneck model with
              | Some (pid, latency) ->
                Format.printf "bottleneck: %a (latency %d)@."
                  Spi.Ids.Process_id.pp pid latency
              | None -> ());
              match Spi.Analysis.deadlock_candidates model with
              | [] -> Format.printf "no deadlock candidates@."
              | comps ->
                List.iter
                  (fun comp ->
                    Format.printf "deadlock candidate: {%s}@."
                      (String.concat ", "
                         (List.map Spi.Ids.Process_id.to_string comp)))
                  comps)
            (V.Flatten.applications system))
  in
  Cmd.v
    (Cmd.info "analyze-file"
       ~doc:"Static analysis of every application of a .spi file")
    Term.(const run $ file_arg)

let synthesize_file_cmd =
  let tech_arg =
    Arg.(
      required
      & opt (some file) None
      & info [ "tech" ] ~docv:"TECHFILE" ~doc:"Technology library (tech format)")
  in
  let run path tech_path metrics_path =
    with_system path (fun system ->
        (match V.System.validate system with
        | [] -> ()
        | errors ->
          List.iter (fun e -> Format.eprintf "%a@." V.System.pp_error e) errors;
          exit 1);
        let tech =
          try Lang.Tech_file.of_file tech_path with
          | Lang.Parser.Parse_error { line; col; message } ->
            Format.eprintf "%s:%d:%d: %s@." tech_path line col message;
            exit 1
          | Invalid_argument m ->
            Format.eprintf "%s: %s@." tech_path m;
            exit 1
        in
        let apps = Synth.App.of_system system in
        let models =
          List.map
            (fun (clusters, model) ->
              ( String.concat "+" (List.map Spi.Ids.Cluster_id.to_string clusters),
                model ))
            (V.Flatten.applications system)
        in
        let report =
          Synth.Report.build ~models
            ~constraints:(V.System.constraints system)
            tech apps
        in
        Format.printf "%a@." Synth.Report.pp report;
        write_metrics metrics_path;
        if Option.is_none report.Synth.Report.optimal then exit 1)
  in
  Cmd.v
    (Cmd.info "synthesize-file"
       ~doc:"Variant-aware synthesis of a .spi file against a tech library")
    Term.(const run $ file_arg $ tech_arg $ metrics_arg)

let lint_cmd =
  let run path =
    with_system path (fun system ->
        let result = V.Lint.run system in
        Format.printf "%a" V.Lint.pp result;
        if not (V.Lint.is_clean result) then exit 1)
  in
  Cmd.v
    (Cmd.info "lint" ~doc:"Run every static check over a .spi file")
    Term.(const run $ file_arg)

let export_cmd =
  let exportable =
    [
      ("figure2", fun () -> F2.system);
      ("figure3", fun () -> F2.system_with_selection);
      ( "generated",
        fun () ->
          V.Generator.generate
            { V.Generator.default with sites = 2; variants_per_site = 3 } );
    ]
  in
  let name_arg =
    Arg.(
      required
      & pos 0 (some (enum exportable)) None
      & info [] ~docv:"SYSTEM"
          ~doc:"figure2, figure3 or generated")
  in
  let run make = print_string (Lang.Printer.to_string (make ())) in
  Cmd.v
    (Cmd.info "export" ~doc:"Print a bundled system in the .spi format")
    Term.(const run $ name_arg)

let models_cmd =
  let run () =
    List.iter
      (fun (name, b) -> Format.printf "%-16s %s@." name b.description)
      models
  in
  Cmd.v (Cmd.info "models" ~doc:"List the bundled models") Term.(const run $ const ())

let validate_cmd =
  let run () =
    let check name system =
      match V.System.validate system with
      | [] -> Format.printf "%-10s OK (%a)@." name V.System.pp system
      | errors ->
        Format.printf "%-10s %d errors@." name (List.length errors);
        List.iter (fun e -> Format.printf "  %a@." V.System.pp_error e) errors
    in
    check "figure2" F2.system;
    check "figure3" F2.system_with_selection;
    let generated =
      V.Generator.generate { V.Generator.default with sites = 2; variants_per_site = 3 }
    in
    check "generated" generated;
    List.iter
      (fun iface ->
        match V.Interface.ambiguous_selection_pairs iface with
        | [] -> ()
        | pairs ->
          Format.printf "figure3 interface %a: %d selection rule pairs not \
                         provably disjoint@."
            Spi.Ids.Interface_id.pp (V.Interface.id iface)
            (List.length pairs))
      (V.System.interfaces F2.system_with_selection)
  in
  Cmd.v
    (Cmd.info "validate" ~doc:"Validate the bundled variant systems")
    Term.(const run $ const ())

let policy_arg =
  let policy_conv =
    Arg.enum
      [
        ("best", Sim.Engine.Best_case);
        ("typical", Sim.Engine.Typical);
        ("worst", Sim.Engine.Worst_case);
      ]
  in
  Arg.(
    value & opt policy_conv Sim.Engine.Typical
    & info [ "policy" ] ~docv:"POLICY" ~doc:"best, typical or worst")

let print_trace_flag =
  Arg.(
    value & flag
    & info [ "print-trace" ] ~doc:"Print the full execution trace")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a trace/v1 timeline (Chrome trace-event JSON, loadable in \
           Perfetto or chrome://tracing) to $(docv).  Streamed \
           incrementally: each run's events are appended as the campaign \
           progresses, so memory stays bounded")

let trace_buffered_flag =
  Arg.(
    value & flag
    & info [ "trace-buffered" ]
        ~doc:
          "Hold the whole timeline in memory and write $(b,--trace) once at \
           the end instead of streaming (the output bytes are identical)")

let compiled_flag =
  Arg.(
    value & flag
    & info [ "compiled" ]
        ~doc:
          "Simulate with the AOT-compiled engine (Sim.Compile): the model is \
           specialized once into flat dispatch tables, then runs \
           allocation-free.  Combined with $(b,--family), the featured pass \
           itself runs compiled (Sim.Family_compiled).  Observationally \
           identical to the interpreter either way")

(* One handle regardless of export mode: [flush] after each run's emit
   (a no-op when buffered), [finish] once at the end. *)
type trace_out = {
  sink : Obs.Trace_event.sink;
  flush : unit -> unit;
  finish : unit -> unit;
}

let trace_out ~buffered path =
  Option.map
    (fun p ->
      let written n =
        Format.printf "@.timeline written to %s (%d events)@." p n
      in
      if buffered then begin
        let builder = Obs.Trace_event.create () in
        {
          sink = Obs.Trace_event.buffer_sink builder;
          flush = (fun () -> ());
          finish =
            (fun () ->
              Obs.Trace_event.to_file p builder;
              written (Obs.Trace_event.length builder));
        }
      end
      else begin
        let stream = Obs.Trace_stream.create p in
        {
          sink = Obs.Trace_stream.sink stream;
          flush = (fun () -> Obs.Trace_stream.flush stream);
          finish = (fun () -> written (Obs.Trace_stream.close stream));
        }
      end)
    path

let vcd_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "vcd" ] ~docv:"FILE" ~doc:"Write a VCD waveform dump to $(docv)")

(* Distinct exit codes so scripts can tell a clean quiescent run from a
   simulation cut short by a limit. *)
let exit_code_of_outcome = function
  | Sim.Engine.Quiescent -> 0
  | Sim.Engine.Time_limit_reached -> 2
  | Sim.Engine.Firing_limit_reached -> 3

let exit_on_outcome outcome =
  let code = exit_code_of_outcome outcome in
  if code <> 0 then exit code

(* ------------------------------------------------------------------ *)
(* Family-based simulation (whole variant space in one pass).          *)
(* ------------------------------------------------------------------ *)

let family_flag =
  Arg.(
    value & flag
    & info [ "family" ]
        ~doc:
          "Evaluate the whole variant space in one featured pass \
           (Sim.Family): shared prefixes execute once, the run splits into \
           sub-families only where configurations diverge, and every \
           configuration's result is reported — identical to running each \
           flattened configuration separately")

let deadline_opt_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "deadline" ] ~docv:"D"
        ~doc:
          "With $(b,--family): also report per-configuration deadline \
           headroom ($(docv) minus the configuration's makespan)")

let outcome_label = function
  | Sim.Engine.Quiescent -> "ok"
  | Sim.Engine.Time_limit_reached -> "time-lim"
  | Sim.Engine.Firing_limit_reached -> "fire-lim"

(* Per-configuration table of a family report: outcome, firing count,
   makespan (and headroom against a deadline), the deepest buffer any
   channel reached, and the configuration's assignment. *)
let print_family_report ?deadline system report =
  Format.printf "%a@." Sim.Family.pp_summary report;
  let spans = Sim.Family.makespans report in
  Format.printf "@.%4s  %-9s %8s %9s %9s %8s  %s@." "cfg" "outcome" "firings"
    "makespan" "headroom" "buf-max" "assignment";
  Array.iteri
    (fun i cr ->
      let model =
        V.Flatten.flatten system
          (V.Variant_space.to_choice cr.Sim.Family.assignment)
      in
      let stats = Sim.Stats.of_result model cr.Sim.Family.result in
      let makespan = snd spans.(i) in
      let headroom =
        match deadline with
        | Some d -> string_of_int (d - makespan)
        | None -> "-"
      in
      let buf_max =
        List.fold_left
          (fun acc c -> max acc c.Sim.Stats.high_water)
          0 stats.Sim.Stats.channels
      in
      Format.printf "%4d  %-9s %8d %9d %9s %8d  %a@." i
        (outcome_label cr.Sim.Family.result.Sim.Engine.outcome)
        cr.Sim.Family.result.Sim.Engine.firings makespan headroom buf_max
        V.Variant_space.pp_assignment cr.Sim.Family.assignment)
    report.Sim.Family.runs

let family_worst_code report =
  Array.fold_left
    (fun acc cr ->
      max acc (exit_code_of_outcome cr.Sim.Family.result.Sim.Engine.outcome))
    0 report.Sim.Family.runs

let simulate_cmd =
  let run_family bundled policy compiled jobs deadline show_trace trace_path
      trace_buffered metrics_path =
    match bundled.system with
    | None ->
      Format.eprintf
        "simulate: this model has no variant space behind it; --family works \
         on figure2-g1, figure2-g2, figure3-v1 and figure3-v2@.";
      exit 1
    | Some sys ->
      let system = sys () in
      let stimuli = bundled.stimuli () in
      let jobs = resolve_jobs jobs in
      let report =
        if compiled then
          Sim.Family_compiled.run ~policy ~stimuli
            ~firing_budget:bundled.budgets ~jobs
            (Sim.Family_compiled.plan system)
        else
          Sim.Family.run ~policy ~stimuli ~firing_budget:bundled.budgets ~jobs
            system
      in
      Format.printf "%s — whole variant space in one featured pass%s@."
        bundled.description
        (if compiled then " [compiled]" else "");
      print_family_report ?deadline system report;
      if show_trace then
        Array.iter
          (fun cr ->
            Format.printf "@.--- trace of configuration %d (%a) ---@.%a@."
              cr.Sim.Family.index V.Variant_space.pp_assignment
              cr.Sim.Family.assignment Sim.Trace.pp
              cr.Sim.Family.result.Sim.Engine.trace)
          report.Sim.Family.runs;
      (match trace_out ~buffered:trace_buffered trace_path with
      | None -> ()
      | Some out ->
        Sim.Family.emit_timeline out.sink system report;
        out.flush ();
        out.finish ());
      write_metrics metrics_path;
      let code = family_worst_code report in
      if code <> 0 then exit code
  in
  let run bundled policy compiled family jobs deadline show_trace vcd_path
      trace_path trace_buffered span_capacity metrics_path =
    apply_span_capacity span_capacity;
    if family then
      run_family bundled policy compiled jobs deadline show_trace trace_path
        trace_buffered metrics_path
    else begin
      let model = bundled.model () in
      let configurations = bundled.configurations () in
      let stimuli = bundled.stimuli () in
      let result =
        if compiled then
          Sim.Compile.run ~policy ~stimuli ~firing_budget:bundled.budgets
            (Sim.Compile.compile ~configurations model)
        else
          Sim.Engine.run ~policy ~configurations ~stimuli
            ~firing_budget:bundled.budgets model
      in
      Format.printf "%s@." bundled.description;
      Format.printf "%a@." Sim.Engine.pp_summary result;
      let stats = Sim.Stats.of_result model result in
      Format.printf "@.%a@." Sim.Stats.pp stats;
      if show_trace then
        Format.printf "@.%a@." Sim.Trace.pp result.Sim.Engine.trace;
      (match vcd_path with
      | None -> ()
      | Some path ->
        Sim.Vcd.to_file path model result;
        Format.printf "@.VCD written to %s@." path);
      (match trace_out ~buffered:trace_buffered trace_path with
      | None -> ()
      | Some out ->
        Sim.Timeline.emit out.sink model result;
        out.flush ();
        out.finish ());
      write_metrics metrics_path;
      exit_on_outcome result.Sim.Engine.outcome
    end
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:
         "Simulate a bundled model (exits 0 when quiescent, 2 on the time \
          limit, 3 on the firing limit); with $(b,--family), evaluate the \
          model's whole variant space in one featured pass and exit with \
          the worst configuration's code")
    Term.(
      const run $ model_arg $ policy_arg $ compiled_flag $ family_flag
      $ jobs_arg $ deadline_opt_arg $ print_trace_flag $ vcd_arg $ trace_arg
      $ trace_buffered_flag $ span_capacity_arg $ metrics_arg)

let faultsim_cmd =
  let model_name_arg =
    Arg.(
      value & opt string "video"
      & info [ "model" ] ~docv:"MODEL"
          ~doc:
            "video or video-novalves; with $(b,--family): figure2, figure3 \
             or generated")
  in
  let seeds_arg =
    Arg.(
      value & opt int 10
      & info [ "seeds" ] ~docv:"N" ~doc:"Number of seeded fault scenarios")
  in
  let no_faults_flag =
    Arg.(
      value & flag
      & info [ "no-faults" ]
          ~doc:"Run the same campaign without injecting any fault (baseline)")
  in
  let deadline_arg =
    Arg.(
      value & opt int 25
      & info [ "deadline" ] ~docv:"D"
          ~doc:"Frame latency budget counted as missed when exceeded")
  in
  let drop_arg =
    Arg.(
      value & opt float 0.02
      & info [ "drop" ] ~docv:"P" ~doc:"Frame loss probability on CVin")
  in
  let transient_arg =
    Arg.(
      value & opt float 0.05
      & info [ "transient" ] ~docv:"P"
          ~doc:"Transient firing-failure probability per stage attempt")
  in
  let trace_seed_arg =
    Arg.(
      value & opt (some int) None
      & info [ "trace-seed" ] ~docv:"SEED"
          ~doc:"Also print the full trace of this seed's run")
  in
  (* --family: the campaign runs over a variant system instead of the
     video model — every seed is one featured pass over the whole space,
     and a configuration misses the deadline when its makespan exceeds
     it.  Fault plans are scripted over the first configuration's model;
     entries naming elements absent from another configuration are inert
     there, exactly as in that configuration's own engine run. *)
  let family_systems =
    [
      ("figure2", fun () -> F2.system);
      ("figure3", fun () -> F2.system_with_selection);
      ( "generated",
        fun () ->
          V.Generator.generate
            { V.Generator.default with sites = 2; variants_per_site = 2 } );
    ]
  in
  let family_fault_plan ~drop ~transient ~seed model =
    let processes =
      List.map
        (fun p ->
          Sim.Fault.on_process
            ~transient:(Sim.Fault.Probability transient)
            ~max_retries:2 ~backoff:1 (Spi.Process.id p))
        (Spi.Model.processes model)
    in
    let channels =
      match
        Spi.Ids.Channel_id.Set.elements (Spi.Model.unwritten_channels model)
      with
      | [] -> []
      | cid :: _ ->
        [ Sim.Fault.on_channel cid Sim.Fault.Drop (Sim.Fault.Probability drop) ]
    in
    Sim.Fault.plan ~channels ~processes ~seed ()
  in
  let run_family model_name seeds no_faults compiled deadline drop transient
      trace_seed jobs trace_path trace_buffered metrics_path =
    let system =
      match List.assoc_opt model_name family_systems with
      | Some make -> make ()
      | None ->
        Format.eprintf
          "faultsim: unknown family system %s (available with --family: %s)@."
          model_name
          (String.concat ", " (List.map fst family_systems));
        exit 1
    in
    let first = V.Flatten.flatten system (V.Flatten.first_cluster system) in
    (* stimuli on the shared (unprefixed) boundary channels only — every
       configuration of the space has them *)
    let stimuli =
      List.concat_map
        (fun cid ->
          if String.contains (Spi.Ids.Channel_id.to_string cid) '.' then []
          else
            List.init 5 (fun i ->
                {
                  Sim.Engine.at = 1 + (3 * i);
                  channel = cid;
                  token = Spi.Token.make ~payload:(i + 1) ();
                }))
        (Spi.Ids.Channel_id.Set.elements (Spi.Model.unwritten_channels first))
    in
    Format.printf "family fault campaign: %s, %d seeds%s%s@." model_name seeds
      (if no_faults then " (faults disabled)" else "")
      (if compiled then " [compiled]" else "");
    (* with --compiled the variant space is lowered once and every
       seed's featured pass reuses the plan (it is immutable, so the
       domain pool shares it freely) *)
    let plan =
      if compiled then Some (Sim.Family_compiled.plan system) else None
    in
    Format.printf "%4s  %-9s %4s %6s %6s %8s %8s %5s@." "seed" "outcome" "cfgs"
      "splits" "subfam" "executed" "shared" "miss";
    let worst_code = ref 0 and total_miss = ref 0 in
    let reports =
      List.map
        (fun seed ->
          let faults =
            if no_faults then None
            else Some (family_fault_plan ~drop ~transient ~seed first)
          in
          let jobs = resolve_jobs jobs in
          let report =
            match plan with
            | Some plan -> Sim.Family_compiled.run ~stimuli ?faults ~jobs plan
            | None -> Sim.Family.run ~stimuli ?faults ~jobs system
          in
          (* headroom is computed once per leaf sub-family and fanned
             out to the leaf's members — a configuration misses the
             deadline when its headroom is negative *)
          let misses =
            Array.fold_left
              (fun acc (_, h) -> if h < 0 then acc + 1 else acc)
              0
              (Sim.Family.headroom ~deadline report)
          in
          let code = family_worst_code report in
          worst_code := max !worst_code code;
          total_miss := !total_miss + misses;
          let worst_outcome =
            Array.fold_left
              (fun acc cr ->
                let o = cr.Sim.Family.result.Sim.Engine.outcome in
                if exit_code_of_outcome o > exit_code_of_outcome acc then o
                else acc)
              Sim.Engine.Quiescent report.Sim.Family.runs
          in
          Format.printf "%4d  %-9s %4d %6d %6d %8d %8d %5d@." seed
            (outcome_label worst_outcome)
            (Array.length report.Sim.Family.runs)
            report.Sim.Family.splits report.Sim.Family.subfamilies
            report.Sim.Family.executed_firings report.Sim.Family.shared_firings
            misses;
          if trace_seed = Some seed then
            Array.iter
              (fun cr ->
                Format.printf
                  "@.--- seed %d, configuration %d (%a) ---@.%a@." seed
                  cr.Sim.Family.index V.Variant_space.pp_assignment
                  cr.Sim.Family.assignment Sim.Trace.pp
                  cr.Sim.Family.result.Sim.Engine.trace)
              report.Sim.Family.runs;
          (seed, report))
        (List.init seeds (fun i -> i + 1))
    in
    (* per-configuration worst case over the campaign, from the
       per-leaf headroom of each seed's report *)
    (match reports with
    | [] -> ()
    | (_, r0) :: _ ->
      let n = Array.length r0.Sim.Family.runs in
      let worst = Array.make n max_int in
      let missed = Array.make n 0 in
      List.iter
        (fun (_, report) ->
          Array.iter
            (fun (i, h) ->
              worst.(i) <- min worst.(i) h;
              if h < 0 then missed.(i) <- missed.(i) + 1)
            (Sim.Family.headroom ~deadline report))
        reports;
      Format.printf "@.%4s %9s %6s  %s@." "cfg" "headroom" "missed" "assignment";
      Array.iteri
        (fun i cr ->
          Format.printf "%4d %9d %6d  %a@." i worst.(i) missed.(i)
            V.Variant_space.pp_assignment cr.Sim.Family.assignment)
        r0.Sim.Family.runs);
    Format.printf
      "@.totals: %d deadline-misses across %d seeds x %d configurations@."
      !total_miss seeds
      (match reports with
      | (_, r) :: _ -> Array.length r.Sim.Family.runs
      | [] -> 0);
    (match trace_out ~buffered:trace_buffered trace_path with
    | None -> ()
    | Some out ->
      (* the family lane convention assigns pid = configuration index + 1,
         so one exported seed keeps the lanes unambiguous; --trace-seed
         selects it (default: first seed) *)
      let pick = Option.value trace_seed ~default:1 in
      (match List.assoc_opt pick reports with
      | Some report -> Sim.Family.emit_timeline out.sink system report
      | None -> ());
      out.flush ();
      out.finish ());
    write_metrics metrics_path;
    if !worst_code <> 0 then exit !worst_code
  in
  let run model_name seeds no_faults family deadline drop transient trace_seed
      jobs compiled trace_path trace_buffered span_capacity metrics_path =
    apply_span_capacity span_capacity;
    if seeds < 1 then begin
      Format.eprintf "faultsim: --seeds must be positive@.";
      exit 1
    end;
    if family then
      run_family model_name seeds no_faults compiled deadline drop transient
        trace_seed jobs trace_path trace_buffered metrics_path
    else
    let with_valves =
      match model_name with
      | "video" -> true
      | "video-novalves" -> false
      | other ->
        Format.eprintf
          "faultsim: unknown model %s (available: video, video-novalves)@."
          other;
        exit 1
    in
    let jobs = resolve_jobs jobs in
    let built =
      Video.System.build { Video.System.default_params with with_valves }
    in
    let stimuli =
      Video.Scenario.switching_demo ~frames:40 ~period:5
        ~switches:[ (52, "fB"); (120, "fA") ]
        ()
    in
    Format.printf "fault campaign: %s, %d seeds%s%s@." model_name seeds
      (if no_faults then " (faults disabled)" else "")
      (if compiled then " [compiled]" else "");
    (* With --compiled the model is specialized once and every seed's
       run reuses the plan; the plan is immutable, so the domain pool
       shares it freely. *)
    let plan =
      if compiled then
        Some
          (Sim.Compile.compile
             ~configurations:built.Video.System.configurations
             built.Video.System.model)
      else None
    in
    Format.printf "%4s  %-9s %7s %6s %5s %5s %4s %4s %4s %4s  %s@." "seed"
      "outcome" "firings" "faults" "degr" "clean" "held" "drop" "miss" "inv"
      "reconf";
    (* Each seed is independent, so the campaign fans out across the
       domain pool; all printing and aggregation happen afterwards in
       seed order, so the report is identical for every job count. *)
    let run_seed seed =
      let faults =
        if no_faults then None
        else
          Some
            (Video.Scenario.fault_plan ~drop_probability:drop
               ~transient_probability:transient ~seed built)
      in
      let result =
        match plan with
        | Some plan -> Sim.Compile.run ~stimuli ?faults plan
        | None ->
          Sim.Engine.run
            ~configurations:built.Video.System.configurations
            ~stimuli ?faults built.Video.System.model
      in
      let report = Video.Checker.check result in
      let stats = Sim.Stats.of_result built.Video.System.model result in
      let misses =
        List.length
          (List.filter
             (fun (_, l) -> l > deadline)
             report.Video.Checker.frame_latencies)
      in
      (seed, result, report, stats, misses)
    in
    let runs =
      Synth.Par.map ~jobs run_seed (Array.init seeds (fun i -> i + 1))
    in
    let survived = ref 0
    and total_faults = ref 0
    and total_degr = ref 0
    and total_clean = ref 0
    and total_held = ref 0
    and total_drop = ref 0
    and total_miss = ref 0
    and unsafe_seeds = ref []
    and worst_code = ref 0 in
    Array.iter
      (fun (seed, result, report, stats, misses) ->
        let safe = Video.Checker.is_safe report in
        let alive =
          result.Sim.Engine.outcome = Sim.Engine.Quiescent
          && report.Video.Checker.clean > 0
          && safe
        in
        if alive then incr survived;
        if not safe then unsafe_seeds := seed :: !unsafe_seeds;
        total_faults :=
          !total_faults + Sim.Stats.total_faults stats.Sim.Stats.faults;
        total_degr :=
          !total_degr + stats.Sim.Stats.faults.Sim.Stats.degradations;
        total_clean := !total_clean + report.Video.Checker.clean;
        total_held := !total_held + report.Video.Checker.held;
        total_drop := !total_drop + report.Video.Checker.dropped;
        total_miss := !total_miss + misses;
        worst_code :=
          max !worst_code (exit_code_of_outcome result.Sim.Engine.outcome);
        let outcome_label =
          match result.Sim.Engine.outcome with
          | Sim.Engine.Quiescent -> "ok"
          | Sim.Engine.Time_limit_reached -> "time-lim"
          | Sim.Engine.Firing_limit_reached -> "fire-lim"
        in
        Format.printf "%4d  %-9s %7d %6d %5d %5d %4d %4d %4d %4d  %d@." seed
          outcome_label result.Sim.Engine.firings
          (Sim.Stats.total_faults stats.Sim.Stats.faults)
          stats.Sim.Stats.faults.Sim.Stats.degradations
          report.Video.Checker.clean report.Video.Checker.held
          report.Video.Checker.dropped misses
          (List.length report.Video.Checker.invalid_clean)
          report.Video.Checker.reconfiguration_time;
        if trace_seed = Some seed then
          Format.printf "@.--- trace of seed %d ---@.%a@.@." seed Sim.Trace.pp
            result.Sim.Engine.trace)
      runs;
    Format.printf "@.survival: %d/%d seeds quiescent, safe and producing@."
      !survived seeds;
    Format.printf
      "totals: %d faults, %d degradations, frames clean=%d held=%d dropped=%d \
       deadline-misses=%d@."
      !total_faults !total_degr !total_clean !total_held !total_drop !total_miss;
    (match List.rev !unsafe_seeds with
    | [] -> ()
    | seeds ->
      Format.printf "unsafe seeds (invalid clean output): %s@."
        (String.concat ", " (List.map string_of_int seeds)));
    let results =
      Array.to_list (Array.map (fun (_, result, _, _, _) -> result) runs)
    in
    Format.printf "@.%a@."
      Video.Checker.pp_headroom
      (Video.Checker.deadline_headroom built.Video.System.model results);
    (match trace_out ~buffered:trace_buffered trace_path with
    | None -> ()
    | Some out ->
      (* one pid per seed keeps the campaign's runs separate lanes-wise;
         streaming flushes each seed's segment before converting the
         next, so the file grows as the campaign does while memory holds
         one seed's events at a time *)
      Array.iter
        (fun (seed, result, _, _, _) ->
          Sim.Timeline.emit ~pid:seed
            ~name:(Printf.sprintf "seed %d" seed)
            out.sink built.Video.System.model result;
          out.flush ())
        runs;
      out.finish ());
    write_metrics metrics_path;
    if !worst_code <> 0 then exit !worst_code
  in
  Cmd.v
    (Cmd.info "faultsim"
       ~doc:
         "Run seeded fault-injection scenarios over the video system and \
          print a survival report (exits 0 when every seed quiesces, 2/3 \
          when one hits the time/firing limit); with $(b,--family), every \
          seed is one featured pass over a whole variant space (figure2, \
          figure3 or generated)")
    Term.(
      const run $ model_name_arg $ seeds_arg $ no_faults_flag $ family_flag
      $ deadline_arg $ drop_arg $ transient_arg $ trace_seed_arg $ jobs_arg
      $ compiled_flag $ trace_arg $ trace_buffered_flag $ span_capacity_arg
      $ metrics_arg)

let simulate_file_cmd =
  let variant_arg =
    Arg.(
      value
      & opt_all (pair ~sep:'=' string string) []
      & info [ "variant" ] ~docv:"IFACE=CLUSTER"
          ~doc:"Cluster choice per interface (default: first cluster)")
  in
  let drive_arg =
    Arg.(
      value & opt int 5
      & info [ "drive" ] ~docv:"N"
          ~doc:"Inject $(docv) tokens into every boundary input channel")
  in
  let json_arg =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Write the run as JSON to $(docv)")
  in
  let csv_arg =
    Arg.(
      value & opt (some string) None
      & info [ "csv" ] ~docv:"FILE" ~doc:"Write the trace as CSV to $(docv)")
  in
  let run path variants drive policy compiled family jobs deadline show_trace
      vcd_path json_path csv_path trace_path trace_buffered span_capacity
      metrics_path =
    apply_span_capacity span_capacity;
    if family && (vcd_path <> None || json_path <> None || csv_path <> None)
    then begin
      Format.eprintf
        "simulate-file: --family cannot be combined with --vcd, --json or \
         --csv (per-configuration exports need a single flattened model)@.";
      exit 1
    end;
    with_system path (fun system ->
        (match V.System.validate system with
        | [] -> ()
        | errors ->
          List.iter (fun e -> Format.eprintf "%a@." V.System.pp_error e) errors;
          exit 1);
        if family then begin
          (* drive only the shared (unprefixed) boundary channels: every
             configuration of the space has them, and --variant is moot
             because the featured pass covers every choice at once *)
          if variants <> [] then
            Format.eprintf
              "simulate-file: note: --variant is ignored with --family (the \
               featured pass covers every cluster choice)@.";
          let first =
            V.Flatten.flatten system (V.Flatten.first_cluster system)
          in
          let stimuli =
            List.concat_map
              (fun cid ->
                if String.contains (Spi.Ids.Channel_id.to_string cid) '.' then
                  []
                else
                  List.init drive (fun i ->
                      {
                        Sim.Engine.at = 1 + i;
                        channel = cid;
                        token = Spi.Token.make ~payload:(i + 1) ();
                      }))
              (Spi.Ids.Channel_id.Set.elements
                 (Spi.Model.unwritten_channels first))
          in
          let report =
            if compiled then
              Sim.Family_compiled.run ~policy ~stimuli
                ~jobs:(resolve_jobs jobs)
                (Sim.Family_compiled.plan system)
            else Sim.Family.run ~policy ~stimuli ~jobs:(resolve_jobs jobs) system
          in
          print_family_report ?deadline system report;
          if show_trace then
            Array.iter
              (fun cr ->
                Format.printf "@.--- trace of configuration %d (%a) ---@.%a@."
                  cr.Sim.Family.index V.Variant_space.pp_assignment
                  cr.Sim.Family.assignment Sim.Trace.pp
                  cr.Sim.Family.result.Sim.Engine.trace)
              report.Sim.Family.runs;
          (match trace_out ~buffered:trace_buffered trace_path with
          | None -> ()
          | Some out ->
            Sim.Family.emit_timeline out.sink system report;
            out.flush ();
            out.finish ());
          write_metrics metrics_path;
          let code = family_worst_code report in
          if code <> 0 then exit code
        end
        else
        let choice iid =
          match
            List.assoc_opt (Spi.Ids.Interface_id.to_string iid) variants
          with
          | Some c -> Spi.Ids.Cluster_id.of_string c
          | None -> V.Flatten.first_cluster system iid
        in
        let model =
          match V.Flatten.flatten_result system choice with
          | Ok m -> m
          | Error d ->
            Format.eprintf "%s: %a@." path V.Diagnostic.pp d;
            exit 1
        in
        let inputs = Spi.Model.unwritten_channels model in
        let stimuli =
          List.concat_map
            (fun cid ->
              List.init drive (fun i ->
                  {
                    Sim.Engine.at = 1 + i;
                    channel = cid;
                    token = Spi.Token.make ~payload:(i + 1) ();
                  }))
            (Spi.Ids.Channel_id.Set.elements inputs)
        in
        let result =
          if compiled then
            Sim.Compile.run ~policy ~stimuli (Sim.Compile.compile model)
          else Sim.Engine.run ~policy ~stimuli model
        in
        Format.printf "%a@." Sim.Engine.pp_summary result;
        Format.printf "@.%a@." Sim.Stats.pp (Sim.Stats.of_result model result);
        if show_trace then
          Format.printf "@.%a@." Sim.Trace.pp result.Sim.Engine.trace;
        Option.iter (fun p -> Sim.Vcd.to_file p model result) vcd_path;
        Option.iter (fun p -> Sim.Json.to_file p model result) json_path;
        Option.iter (fun p -> Sim.Csv.trace_to_file p result) csv_path;
        (match trace_out ~buffered:trace_buffered trace_path with
        | None -> ()
        | Some out ->
          Sim.Timeline.emit out.sink model result;
          out.flush ();
          out.finish ());
        write_metrics metrics_path;
        exit_on_outcome result.Sim.Engine.outcome)
  in
  Cmd.v
    (Cmd.info "simulate-file"
       ~doc:
         "Flatten and simulate a .spi file, optionally exporting the run \
          (exits 0 when quiescent, 2 on the time limit, 3 on the firing \
          limit); with $(b,--family), simulate the file's whole variant \
          space in one featured pass")
    Term.(
      const run $ file_arg $ variant_arg $ drive_arg $ policy_arg
      $ compiled_flag $ family_flag $ jobs_arg $ deadline_opt_arg
      $ print_trace_flag $ vcd_arg $ json_arg $ csv_arg $ trace_arg
      $ trace_buffered_flag $ span_capacity_arg $ metrics_arg)

let analyze_cmd =
  let run bundled =
    let model = bundled.model () in
    Format.printf "%s: %a@." bundled.description Spi.Model.pp_stats model;
    Format.printf "@.rate balance:@.";
    List.iter
      (fun (cid, balance) ->
        Format.printf "  %-12s %a@." (Spi.Ids.Channel_id.to_string cid)
          Spi.Analysis.pp_balance balance)
      (Spi.Analysis.balance_report model);
    (match Spi.Analysis.deadlock_candidates model with
    | [] -> Format.printf "@.no structural deadlock candidates@."
    | comps ->
      Format.printf "@.deadlock candidates:@.";
      List.iter
        (fun comp ->
          Format.printf "  {%s}@."
            (String.concat ", " (List.map Spi.Ids.Process_id.to_string comp)))
        comps);
    Format.printf "@.queue bounds (16 source executions):@.";
    List.iter
      (fun (cid, bound) ->
        Format.printf "  %-12s %s@." (Spi.Ids.Channel_id.to_string cid)
          (match bound with
          | Some b -> string_of_int b
          | None -> "unbounded/cyclic"))
      (Spi.Analysis.queue_bounds ~source_executions:16 model)
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Static analysis of a bundled model")
    Term.(const run $ model_arg)

let dot_cmd =
  let run bundled =
    let model = bundled.model () in
    let module Dot = Graphlib.Dot.Make (Spi.Model.Graph) in
    let node_attrs = function
      | Spi.Model.P _ -> [ ("shape", "box") ]
      | Spi.Model.C _ -> [ ("shape", "ellipse") ]
    in
    Dot.pp ~graph_name:"spi" ~node_attrs ~node_label:Spi.Model.node_label
      Format.std_formatter (Spi.Model.to_graph model)
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Export a bundled model's graph as Graphviz")
    Term.(const run $ model_arg)

let dot_system_cmd =
  let systems =
    [
      ("figure2", fun () -> F2.system);
      ("figure3", fun () -> F2.system_with_selection);
      ( "generated",
        fun () ->
          V.Generator.generate
            { V.Generator.default with sites = 2; variants_per_site = 3 } );
    ]
  in
  let name_arg =
    Arg.(
      required
      & pos 0 (some (enum systems)) None
      & info [] ~docv:"SYSTEM" ~doc:"figure2, figure3 or generated")
  in
  let run make = print_string (V.Dot_system.to_string (make ())) in
  Cmd.v
    (Cmd.info "dot-system"
       ~doc:"Graphviz of the variant structure (interfaces and clusters as boxes)")
    Term.(const run $ name_arg)

let synthesize_cmd =
  let run jobs compiled trace_path trace_buffered span_capacity metrics_path =
    apply_span_capacity span_capacity;
    if Option.is_some trace_path then Synth.Domain_trace.enable ();
    let jobs = resolve_jobs jobs in
    let tech = F2.table1_tech in
    let apps = [ F2.app1; F2.app2 ] in
    let print name (s : Synth.Explore.solution) =
      Format.printf "%-14s %a@." name Synth.Cost.pp s.Synth.Explore.cost
    in
    print "Application 1" (Synth.Explore.optimal_exn ~jobs tech [ F2.app1 ]);
    print "Application 2" (Synth.Explore.optimal_exn ~jobs tech [ F2.app2 ]);
    (match Synth.Superpose.superpose ~jobs tech apps with
    | Some r -> Format.printf "%-14s %a@." "Superposition" Synth.Cost.pp r.Synth.Superpose.cost
    | None -> Format.printf "superposition infeasible@.");
    print "With variants" (Synth.Explore.optimal_exn ~jobs tech apps);
    let out = trace_out ~buffered:trace_buffered trace_path in
    (match out with
    | Some o ->
      Synth.Domain_trace.emit_timeline ~pid:1 ~name:"explorer" o.sink;
      Synth.Domain_trace.disable ();
      o.flush ()
    | None -> ());
    (* Sanity-check each application's flattened model by simulating it;
       this also puts engine counters next to the explorer counters in
       the metrics snapshot. *)
    List.iteri
      (fun i cluster ->
        let model =
          V.Flatten.flatten F2.system
            (V.Flatten.choice_of_list [ ("iface1", cluster) ])
        in
        let stimuli =
          List.init 5 (fun i ->
              {
                Sim.Engine.at = 1 + (3 * i);
                channel = F2.cx;
                token = Spi.Token.make ~payload:(i + 1) ();
              })
        in
        let result =
          if compiled then
            Sim.Compile.run ~stimuli (Sim.Compile.compile model)
          else Sim.Engine.run ~stimuli model
        in
        Format.printf "sim check %-6s %a@." cluster Sim.Engine.pp_summary
          result;
        match out with
        | Some o ->
          Sim.Timeline.emit ~pid:(i + 2)
            ~name:("sim check " ^ cluster)
            o.sink model result;
          o.flush ()
        | None -> ())
      [ "g1"; "g2" ];
    Option.iter (fun o -> o.finish ()) out;
    write_metrics metrics_path
  in
  Cmd.v
    (Cmd.info "synthesize"
       ~doc:
         "Run the Table 1 synthesis flows and simulate each application's \
          flattened model as a sanity check")
    Term.(
      const run $ jobs_arg $ compiled_flag $ trace_arg $ trace_buffered_flag
      $ span_capacity_arg $ metrics_arg)

let schedule_cmd =
  let run () =
    (* Application 1 under its Table 1 optimal binding, with per-process
       figures for the cluster internals *)
    let model =
      V.Flatten.flatten F2.system
        (V.Flatten.choice_of_list [ ("iface1", "g1") ])
    in
    let pid = Spi.Ids.Process_id.of_string in
    let tech =
      Synth.Tech.make
        [
          (pid "PA", Synth.Tech.both ~load:40 ~area:26);
          (pid "PB", Synth.Tech.both ~load:30 ~area:30);
          (pid "iface1.x1", Synth.Tech.both ~load:30 ~area:10);
          (pid "iface1.x2", Synth.Tech.both ~load:30 ~area:9);
        ]
    in
    let binding =
      Synth.Binding.of_list
        [
          (pid "PA", Synth.Binding.Sw);
          (pid "PB", Synth.Binding.Sw);
          (pid "iface1.x1", Synth.Binding.Hw);
          (pid "iface1.x2", Synth.Binding.Hw);
        ]
    in
    match Synth.List_schedule.schedule tech binding model with
    | Error e -> Format.printf "%a@." Synth.List_schedule.pp_error e
    | Ok s ->
      Format.printf "Application 1 (cluster g1 in hardware):@.@.%a@."
        Synth.List_schedule.pp_gantt s
  in
  Cmd.v
    (Cmd.info "schedule"
       ~doc:"Static list schedule + Gantt chart of the Table 1 application")
    Term.(const run $ const ())

let pareto_cmd =
  let run jobs metrics_path =
    let points =
      Synth.Pareto.frontier ~jobs F2.table1_tech [ F2.app1; F2.app2 ]
    in
    Format.printf "cost/load Pareto frontier (%d points):@." (List.length points);
    List.iter (fun p -> Format.printf "  %a@." Synth.Pareto.pp_point p) points;
    write_metrics metrics_path
  in
  Cmd.v
    (Cmd.info "pareto" ~doc:"Cost/load frontier for the Table 1 example")
    Term.(const run $ jobs_arg $ metrics_arg)

let report_cmd =
  let run () =
    let models =
      List.map
        (fun (clusters, model) ->
          let name =
            match clusters with
            | [ c ] when Spi.Ids.Cluster_id.to_string c = "g1" -> "Application 1"
            | _ -> "Application 2"
          in
          (name, model))
        (V.Flatten.applications F2.system)
    in
    let r =
      Synth.Report.build ~models F2.table1_tech [ F2.app1; F2.app2 ]
    in
    Format.printf "%a@." Synth.Report.pp r
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Full synthesis report for the Table 1 example")
    Term.(const run $ const ())

let sensitivity_cmd =
  let run () =
    let apps = [ F2.app1; F2.app2 ] in
    Format.printf "%-14s | %-9s | %s@." "process" "parameter" "decision";
    List.iter
      (fun (pid, name, parameter, lo, hi) ->
        let label =
          match parameter with
          | Synth.Sensitivity.Hw_area -> "hw area"
          | Synth.Sensitivity.Sw_load -> "sw load"
        in
        match
          Synth.Sensitivity.flip_point ~parameter ~range:(lo, hi)
            F2.table1_tech apps pid
        with
        | Some flip ->
          Format.printf "%-14s | %-9s | %a@." name label
            Synth.Sensitivity.pp_flip flip
        | None ->
          Format.printf "%-14s | %-9s | stable over [%d, %d]@." name label lo hi)
      [
        (F2.pa, "PA", Synth.Sensitivity.Hw_area, 26, 80);
        (F2.pb, "PB", Synth.Sensitivity.Sw_load, 30, 100);
        (F2.unit_g1, "cluster g1", Synth.Sensitivity.Hw_area, 19, 100);
        (F2.unit_g2, "cluster g2", Synth.Sensitivity.Sw_load, 55, 100);
      ]
  in
  Cmd.v
    (Cmd.info "sensitivity"
       ~doc:"Flip points of the Table 1 optimum under parameter drift")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* Synthesis as a service.                                             *)
(* ------------------------------------------------------------------ *)

let socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket path for the serve/v1 protocol")

let serve_cmd =
  let store_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "store" ] ~docv:"FILE"
          ~doc:
            "Crash-safe exploration journal; replayed on start so \
             synthesis warm-starts from bounds proved before a crash")
  in
  let queue_limit_arg =
    Arg.(
      value
      & opt int Serve.Daemon.default_queue_limit
      & info [ "queue-limit" ] ~docv:"N"
          ~doc:
            "Admission bound: requests queued beyond $(docv) are shed \
             with a structured overloaded rejection")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "Default per-request deadline, measured from admission; a \
             request's own deadline_ms takes precedence")
  in
  let no_fsync_arg =
    Arg.(
      value & flag
      & info [ "no-fsync" ]
          ~doc:
            "Skip fsync on journal commits (faster, but a power loss can \
             drop acknowledged records)")
  in
  let log_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "log" ] ~docv:"FILE"
          ~doc:
            "Append the structured log/v1 stream (one JSON object per \
             line) to $(docv) instead of stderr")
  in
  let log_level_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("debug", Obs.Log.Debug);
               ("info", Obs.Log.Info);
               ("warn", Obs.Log.Warn);
               ("error", Obs.Log.Error);
             ])
          Obs.Log.Info
      & info [ "log-level" ] ~docv:"LEVEL"
          ~doc:"Log threshold: debug, info, warn or error")
  in
  let sample_interval_arg =
    Arg.(
      value
      & opt int Serve.Daemon.default_sample_interval_ms
      & info [ "sample-interval-ms" ] ~docv:"MS"
          ~doc:
            "Period of the time-series ticker behind the metrics verb's \
             rolling rates and quantiles; 0 disables sampling")
  in
  let series_windows_arg =
    Arg.(
      value
      & opt int Obs.Series.default_windows
      & info [ "series-windows" ] ~docv:"N"
          ~doc:"Samples retained for the rolling series")
  in
  let run socket_path store_path metrics_path trace_path log_path log_level
      sample_interval_ms series_windows jobs queue_limit default_deadline_ms
      no_fsync =
    if queue_limit < 1 then begin
      Format.eprintf "--queue-limit must be positive@.";
      exit 1
    end;
    if sample_interval_ms < 0 then begin
      Format.eprintf "--sample-interval-ms must be >= 0@.";
      exit 1
    end;
    if series_windows < 2 then begin
      Format.eprintf "--series-windows must be >= 2@.";
      exit 1
    end;
    Serve.Daemon.run
      {
        Serve.Daemon.socket_path;
        store_path;
        metrics_path;
        trace_path;
        log_path;
        log_level;
        sample_interval_ms;
        series_windows;
        jobs = resolve_jobs jobs;
        queue_limit;
        default_deadline_ms;
        fsync = not no_fsync;
      }
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the synthesis daemon: admission control, per-request \
          deadlines, crash-safe exploration store, live telemetry")
    Term.(
      const run $ socket_arg $ store_arg $ metrics_arg $ trace_arg $ log_arg
      $ log_level_arg $ sample_interval_arg $ series_windows_arg $ jobs_arg
      $ queue_limit_arg $ deadline_arg $ no_fsync_arg)

let request_cmd =
  let op_arg =
    Arg.(
      required
      & pos 0
          (some
             (enum
                [
                  ("ping", `Ping);
                  ("stats", `Stats);
                  ("metrics", `Metrics);
                  ("shutdown", `Shutdown);
                  ("synthesize", `Synthesize);
                  ("pareto", `Pareto);
                  ("simulate", `Simulate);
                  ("batch", `Batch);
                ]))
          None
      & info [] ~docv:"OP"
          ~doc:
            "ping, stats, metrics, shutdown, synthesize, pareto, simulate \
             or batch")
  in
  let model_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "file" ] ~docv:"FILE"
          ~doc:"Model in the .spi format (synthesize, pareto, simulate)")
  in
  let tech_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "tech" ] ~docv:"TECHFILE"
          ~doc:"Technology library (synthesize, pareto)")
  in
  let capacity_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "capacity" ] ~docv:"N" ~doc:"Processor load capacity")
  in
  let until_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "until" ] ~docv:"TIME" ~doc:"Simulation horizon (simulate)")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "Per-request deadline; past it the daemon returns the best \
             incumbent found so far, marked degraded")
  in
  let id_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "id" ] ~docv:"ID"
          ~doc:
            "Idempotency key; defaults to a generated one so retries \
             never recompute")
  in
  let timeout_arg =
    Arg.(
      value & opt float 10.
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:"Per-attempt budget covering connect, send and receive")
  in
  let attempts_arg =
    Arg.(
      value & opt int 5
      & info [ "attempts" ] ~docv:"N"
          ~doc:
            "Attempts before giving up; delays back off exponentially \
             with jitter and honor the daemon's retry_after_ms")
  in
  let seed_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"Jitter seed (default: PID); fix it for reproducible runs")
  in
  let jobs_req_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"JOBS"
          ~doc:"Override the daemon's domain count for this request")
  in
  let count_arg =
    Arg.(
      value & opt int 4
      & info [ "count" ] ~docv:"N"
          ~doc:"Batch size: the item is replicated $(docv) times (batch)")
  in
  let trace_spans_flag =
    Arg.(
      value & flag
      & info [ "trace-spans" ]
          ~doc:
            "Ask the daemon to attach the request's rtrace/v1 span tree \
             to the response")
  in
  let need what = function
    | Some v -> v
    | None ->
      Format.eprintf "request: missing %s@." what;
      exit 2
  in
  let run socket op model tech capacity until compiled family count
      deadline_ms id timeout_s attempts seed jobs trace =
    let synthesize () =
      Serve.Protocol.Synthesize
        {
          model = read_file (need "--file MODEL" model);
          tech = read_file (need "--tech TECHFILE" tech);
          capacity;
        }
    in
    let op =
      match op with
      | `Ping -> Serve.Protocol.Ping
      | `Stats -> Serve.Protocol.Stats
      | `Metrics -> Serve.Protocol.Metrics
      | `Shutdown -> Serve.Protocol.Shutdown
      | `Synthesize -> synthesize ()
      | `Pareto ->
        Serve.Protocol.Pareto
          {
            model = read_file (need "--file MODEL" model);
            tech = read_file (need "--tech TECHFILE" tech);
            capacity;
          }
      | `Simulate ->
        Serve.Protocol.Simulate
          {
            model = read_file (need "--file MODEL" model);
            until;
            compiled;
            family;
          }
      | `Batch ->
        if count < 1 then begin
          Format.eprintf "request: --count must be positive@.";
          exit 2
        end;
        let item = synthesize () in
        Serve.Protocol.Batch
          (List.init count (fun _ ->
               {
                 Serve.Protocol.id = None;
                 deadline_ms = None;
                 jobs = None;
                 trace = false;
                 op = item;
               }))
    in
    let request = { Serve.Protocol.id; deadline_ms; jobs; trace; op } in
    match
      Serve.Client.request ~timeout_s ~attempts ?seed ~socket request
    with
    | Serve.Client.Response json ->
      print_endline (Obs.Json.to_string json);
      if Serve.Protocol.status_of_response json <> "ok" then exit 1
    | Serve.Client.Overloaded json ->
      print_endline (Obs.Json.to_string json);
      exit 2
    | Serve.Client.Unreachable why ->
      Format.eprintf "request: daemon unreachable: %s@." why;
      exit 3
  in
  Cmd.v
    (Cmd.info "request"
       ~doc:
         "Send one request to a running serve daemon, with timeout, \
          retries and an idempotency key")
    Term.(
      const run $ socket_arg $ op_arg $ model_arg $ tech_arg $ capacity_arg
      $ until_arg $ compiled_flag $ family_flag $ count_arg $ deadline_arg
      $ id_arg $ timeout_arg $ attempts_arg $ seed_arg $ jobs_req_arg
      $ trace_spans_flag)

(* ------------------------------------------------------------------ *)
(* Live telemetry: top and metrics-diff.                               *)
(* ------------------------------------------------------------------ *)

let top_cmd =
  let module J = Obs.Json in
  let interval_arg =
    Arg.(
      value & opt int 1000
      & info [ "interval-ms" ] ~docv:"MS" ~doc:"Polling period")
  in
  let frames_arg =
    Arg.(
      value & opt int 0
      & info [ "frames" ] ~docv:"N"
          ~doc:"Exit after $(docv) polls; 0 polls until interrupted")
  in
  let raw_flag =
    Arg.(
      value & flag
      & info [ "raw" ]
          ~doc:
            "Print one minified metrics response per poll instead of \
             redrawing a dashboard (for scripts and smoke tests)")
  in
  let member path json =
    List.fold_left (fun j k -> Option.bind j (J.member k)) (Some json) path
  in
  let as_int path json = Option.bind (member path json) J.to_int in
  let as_float path json =
    match member path json with
    | Some (J.Float f) -> Some f
    | Some (J.Int i) -> Some (float_of_int i)
    | _ -> None
  in
  let fmt_ms = function
    | Some ns -> Printf.sprintf "%.1fms" (float_of_int ns /. 1e6)
    | None -> "-"
  in
  let fmt_rate = function Some r -> Printf.sprintf "%.1f" r | None -> "-" in
  let render socket frame json =
    let snap = Option.value ~default:J.Null (member [ "snapshot" ] json) in
    let series = Option.value ~default:J.Null (member [ "series" ] json) in
    let b = Buffer.create 1024 in
    let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
    line "spi-variants top — %s (frame %d)" socket frame;
    line "";
    line "queue depth   %-6s in-flight %s"
      (match as_int [ "gauges"; "serve.queue_depth" ] snap with
      | Some d -> string_of_int d
      | None -> "-")
      (match as_int [ "gauges"; "serve.inflight_requests" ] snap with
      | Some d -> string_of_int d
      | None -> "-");
    line "req/s         last %-8s mean %s"
      (fmt_rate (as_float [ "counters"; "serve.requests"; "last_per_s" ] series))
      (fmt_rate (as_float [ "counters"; "serve.requests"; "mean_per_s" ] series));
    line "shed/s        last %-8s mean %s"
      (fmt_rate
         (as_float
            [ "counters"; "serve.admission_rejections"; "last_per_s" ]
            series))
      (fmt_rate
         (as_float
            [ "counters"; "serve.admission_rejections"; "mean_per_s" ]
            series));
    (let hits =
       Option.value ~default:0
         (as_int [ "counters"; "serve.plan_cache_hits" ] snap)
     and misses =
       Option.value ~default:0
         (as_int [ "counters"; "serve.plan_cache_misses" ] snap)
     in
     if hits + misses > 0 then
       line "plan cache    hits %d  misses %d  hit-rate %.0f%%" hits misses
         (100. *. float_of_int hits /. float_of_int (hits + misses)));
    (let h p =
       as_int [ "histograms"; "serve.request_ns"; p ] series
     in
     line "latency       p50 %-8s p90 %-8s p99 %s (rolling, %s windows)"
       (fmt_ms (h "p50")) (fmt_ms (h "p90")) (fmt_ms (h "p99"))
       (match as_int [ "windows" ] series with
       | Some w -> string_of_int w
       | None -> "0"));
    (let tasks =
       as_float [ "counters"; "par.tasks"; "last_per_s" ] series
     and steals =
       as_float [ "counters"; "par.steals"; "last_per_s" ] series
     in
     line "pool          tasks/s %-6s steals/s %s" (fmt_rate tasks)
       (fmt_rate steals));
    Buffer.contents b
  in
  let run socket interval_ms frames raw =
    if interval_ms < 1 then begin
      Format.eprintf "--interval-ms must be positive@.";
      exit 1
    end;
    let stop = ref false in
    (try Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> stop := true))
     with Invalid_argument _ -> ());
    let metrics_request =
      {
        Serve.Protocol.id = None;
        deadline_ms = None;
        jobs = None;
        trace = false;
        op = Serve.Protocol.Metrics;
      }
    in
    let frame = ref 0 in
    let rec loop () =
      if !stop || (frames > 0 && !frame >= frames) then ()
      else begin
        incr frame;
        (match
           Serve.Client.request ~timeout_s:5. ~attempts:1 ~socket
             metrics_request
         with
        | Serve.Client.Response json when raw ->
          print_endline (J.to_string ~minify:true json)
        | Serve.Client.Response json ->
          (* home + clear-to-end redraw: no flicker, no scrollback spam *)
          print_string "\027[H\027[2J";
          print_string (render socket !frame json);
          flush stdout
        | Serve.Client.Overloaded _ ->
          Format.eprintf "top: daemon overloaded, retrying@."
        | Serve.Client.Unreachable why ->
          Format.eprintf "top: daemon unreachable: %s@." why;
          exit 3);
        if not (!stop || (frames > 0 && !frame >= frames)) then
          Unix.sleepf (float_of_int interval_ms /. 1000.);
        loop ()
      end
    in
    loop ()
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live terminal dashboard over a running daemon's metrics verb: \
          queue depth, request rates, rolling latency quantiles")
    Term.(const run $ socket_arg $ interval_arg $ frames_arg $ raw_flag)

let metrics_diff_cmd =
  let a_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"A.json" ~doc:"Baseline obs/v1 snapshot")
  in
  let b_arg =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"B.json" ~doc:"Comparison obs/v1 snapshot")
  in
  let run a b =
    let parse path =
      match Obs.Json.parse (read_file path) with
      | Ok json -> json
      | Error e ->
        Format.eprintf "metrics-diff: %s: %s@." path e;
        exit 1
    in
    match Obs.Series.diff_snapshots (parse a) (parse b) with
    | Ok diff -> print_endline (Obs.Json.to_string ~minify:false diff)
    | Error e ->
      Format.eprintf "metrics-diff: %s@." e;
      exit 1
  in
  Cmd.v
    (Cmd.info "metrics-diff"
       ~doc:
         "Diff two obs/v1 metrics snapshots: counter deltas and the \
          latency quantiles of what happened between them")
    Term.(const run $ a_arg $ b_arg)

let () =
  let info =
    Cmd.info "spi-variants" ~version:"1.0.0"
      ~doc:"Function-variant representation for embedded system optimization"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            models_cmd;
            validate_cmd;
            simulate_cmd;
            faultsim_cmd;
            analyze_cmd;
            dot_cmd;
            dot_system_cmd;
            synthesize_cmd;
            pareto_cmd;
            schedule_cmd;
            report_cmd;
            sensitivity_cmd;
            fmt_cmd;
            check_cmd;
            analyze_file_cmd;
            simulate_file_cmd;
            synthesize_file_cmd;
            lint_cmd;
            export_cmd;
            serve_cmd;
            request_cmd;
            top_cmd;
            metrics_diff_cmd;
          ]))
