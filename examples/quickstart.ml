(* Quickstart: build the paper's Figure 1 SPI model, inspect it, and
   simulate it against a scripted environment.

   Run with: dune exec examples/quickstart.exe *)

let () =
  let model = Paper.Figure1.model in
  Format.printf "=== Figure 1 SPI example ===@.";
  Format.printf "Model: %a@." Spi.Model.pp_stats model;

  (* Inspect p2: interval parameters refined by modes m1/m2. *)
  let p2 = Spi.Model.get_process Paper.Figure1.p2 model in
  Format.printf "@.%a@." Spi.Process.pp p2;
  Format.printf "@.p2 latency hull: %a@." Interval.pp (Spi.Process.latency_hull p2);
  Format.printf "p2 consumption hull on c1: %a@." Interval.pp
    (Spi.Process.consumption_hull p2 Paper.Figure1.c1);

  (* Static timing: worst-case path latency p1 ~> p3. *)
  let latency_of pid =
    Interval.hi (Spi.Process.latency_hull (Spi.Model.get_process pid model))
  in
  let constraint_ =
    Spi.Constraint_.latency_path ~name:"end-to-end" ~from_:Paper.Figure1.p1
      ~to_:Paper.Figure1.p3 ~bound:12
  in
  Format.printf "@.Constraint %a: %a@." Spi.Constraint_.pp constraint_
    Spi.Constraint_.pp_outcome
    (Spi.Constraint_.check ~latency_of model constraint_);

  (* Simulate: environment tokens alternating tags 'a'/'b'. *)
  let result =
    Sim.Engine.run ~policy:Sim.Engine.Worst_case
      ~stimuli:(Paper.Figure1.stimuli_mixed ~n:8)
      model
  in
  Format.printf "@.=== Simulation (worst-case policy) ===@.%a@."
    Sim.Engine.pp_summary result;
  let p2_starts = Sim.Trace.starts ~process:Paper.Figure1.p2 result.trace in
  Format.printf "p2 executed %d times; modes used:@." (List.length p2_starts);
  List.iter
    (function
      | Sim.Trace.Started { time; mode; _ } ->
        Format.printf "  t=%d mode %a@." time Spi.Ids.Mode_id.pp mode
      | Sim.Trace.Injected _ | Sim.Trace.Completed _ | Sim.Trace.Faulted _
      | Sim.Trace.Quiescent _ ->
        ())
    p2_starts;
  Format.printf "@.Full trace:@.%a@." Sim.Trace.pp result.trace
